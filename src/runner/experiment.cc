#include "runner/experiment.h"

#include <algorithm>
#include <cmath>

#include <optional>

#include "attack/power_virus.h"
#include "battery/battery_unit.h"
#include "core/udeb.h"
#include "engine/prof_stats.h"
#include "obs/tracer.h"
#include "power/server_power_model.h"
#include "util/logging.h"

namespace pad::runner {

namespace {

/** splitmix64 hash for deterministic per-(stream, second) noise. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

double
unitNoise(std::uint64_t stream, std::uint64_t second)
{
    const std::uint64_t h = mix((stream << 40) ^ second);
    return static_cast<double>(h >> 11) /
               static_cast<double>(1ULL << 53) * 2.0 -
           1.0;
}

RackLabResult
runRackLab(const RackLabSpec &cfg, double windowSec)
{
    PAD_ASSERT(cfg.servers >= 1 &&
               cfg.maliciousNodes <= cfg.servers);
    power::ServerPowerModel model(
        power::ServerPowerConfig{cfg.idlePower, cfg.peakPower, 0.85});
    const Watts nameplate = cfg.peakPower * cfg.servers;

    RackLabResult out;
    out.budget = cfg.budgetFraction * nameplate;
    out.limit = out.budget * (1.0 + cfg.overshoot);

    attack::PowerVirus virus(cfg.kind, cfg.train, cfg.seed);

    std::unique_ptr<battery::BatteryUnit> deb;
    if (cfg.batteryCharged) {
        battery::BatteryUnitConfig bc;
        bc.capacityWh = joulesToWattHours(nameplate * cfg.batterySeconds);
        bc.maxDischargePower = nameplate * 1.2;
        bc.maxChargePower = nameplate * 0.05;
        deb = std::make_unique<battery::BatteryUnit>("lab.deb", bc);
    }
    std::unique_ptr<core::MicroDeb> udeb;
    if (cfg.withUdeb) {
        core::MicroDebConfig uc;
        uc.cap.capacitanceF = cfg.udebFarads;
        udeb = std::make_unique<core::MicroDeb>("lab.udeb", uc);
    }

    bool inOverload = false;
    std::vector<double> crossings; // seconds of each overload onset
    double secAccum = 0.0;
    double secEnergy = 0.0;
    const int steps = static_cast<int>(windowSec / cfg.stepSec + 0.5);
    for (int i = 0; i < steps; ++i) {
        const double t = i * cfg.stepSec;
        const auto second = static_cast<std::uint64_t>(t);

        Watts rack = 0.0;
        const double malUtil = virus.phaseTwoUtil(t);
        for (int s = 0; s < cfg.servers; ++s) {
            double util;
            if (s < cfg.maliciousNodes) {
                util = malUtil;
            } else {
                util = cfg.normalUtil *
                       (1.0 + cfg.noiseAmp *
                                  unitNoise(cfg.seed ^ (s + 1), second));
            }
            rack += model.power(std::clamp(util, 0.0, 1.0));
        }

        Watts draw = rack;
        if (deb) {
            const Watts excess = std::max(0.0, draw - out.budget);
            if (excess > 0.0)
                draw -= deb->discharge(excess, cfg.stepSec) / cfg.stepSec;
            else
                deb->rest(cfg.stepSec);
            if (deb->unavailable() && out.batteryOutSec < 0.0)
                out.batteryOutSec = t;
        }
        if (udeb) {
            const Watts residual =
                std::max(0.0, draw - out.limit * 0.999);
            if (residual > 0.0)
                draw -= udeb->shave(residual, cfg.stepSec);
            else
                udeb->recharge(std::max(0.0, out.budget - draw),
                               cfg.stepSec);
        }

        const bool over = draw > out.limit;
        if (over && !inOverload) {
            crossings.push_back(t);
            if (out.firstOverloadSec < 0.0)
                out.firstOverloadSec = t;
        }
        inOverload = over;

        secEnergy += draw * cfg.stepSec;
        secAccum += cfg.stepSec;
        if (secAccum >= 1.0 - 1e-9) {
            out.drawPerSecond.push_back(secEnergy / secAccum);
            secAccum = 0.0;
            secEnergy = 0.0;
        }
    }

    for (int i = 0;; ++i) {
        const double s = virus.spikeStart(i);
        const double e = s + cfg.train.widthSec;
        if (e > windowSec)
            break;
        out.spikeWindows.emplace_back(s, e);
    }
    out.spikesLaunched = static_cast<int>(out.spikeWindows.size());

    // Effective attacks are counted per *spike*, the paper's unit of
    // attack: a spike is effective when an overload onset falls in
    // (or just after) its window. Residual onsets outside any spike
    // (sustained saturation, noise flicker at the limit) collapse
    // into a single extra event.
    const double slack = virus.signature().riseTimeSec + 0.5;
    bool residual = false;
    std::size_t spike = 0;
    std::vector<bool> hit(out.spikeWindows.size(), false);
    for (double t : crossings) {
        while (spike < out.spikeWindows.size() &&
               out.spikeWindows[spike].second + slack < t)
            ++spike;
        if (spike < out.spikeWindows.size() &&
            t >= out.spikeWindows[spike].first - 0.5 &&
            t <= out.spikeWindows[spike].second + slack)
            hit[spike] = true;
        else
            residual = true;
    }
    for (bool h : hit)
        out.effectiveAttacks += h;
    out.effectiveAttacks += residual ? 1 : 0;
    return out;
}

RackLabServerTrace
runRackLabServers(const RackLabSpec &cfg, double windowSec)
{
    PAD_ASSERT(cfg.maliciousNodes >= 1);
    power::ServerPowerModel model(
        power::ServerPowerConfig{cfg.idlePower, cfg.peakPower, 0.85});
    attack::PowerVirus virus(cfg.kind, cfg.train, cfg.seed);
    const double pressure =
        cfg.train.pressure >= 0.0 ? cfg.train.pressure
                                  : virus.signature().phaseTwoPressure;
    const double restUtil = pressure * virus.signature().maxUtil;

    RackLabServerTrace out;
    out.stepSec = cfg.stepSec;
    out.baseline = model.power(restUtil);
    out.power.resize(static_cast<std::size_t>(cfg.maliciousNodes));
    out.spikes.resize(static_cast<std::size_t>(cfg.maliciousNodes));

    // Round-robin attribution: spike k fires on node k % N, so each
    // node's individual trace carries 1/N of the schedule.
    std::vector<std::pair<double, double>> allSpikes;
    for (int i = 0;; ++i) {
        const double s = virus.spikeStart(i);
        const double e = s + cfg.train.widthSec;
        if (e > windowSec)
            break;
        allSpikes.emplace_back(s, e);
        out.spikes[static_cast<std::size_t>(i % cfg.maliciousNodes)]
            .emplace_back(s, e);
    }

    const int steps = static_cast<int>(windowSec / cfg.stepSec + 0.5);
    for (int n = 0; n < cfg.maliciousNodes; ++n) {
        auto &trace = out.power[static_cast<std::size_t>(n)];
        trace.reserve(static_cast<std::size_t>(steps));
        std::size_t next = 0;
        const auto &mine = out.spikes[static_cast<std::size_t>(n)];
        for (int i = 0; i < steps; ++i) {
            const double t = i * cfg.stepSec;
            while (next < mine.size() && t >= mine[next].second)
                ++next;
            const bool spiking = next < mine.size() &&
                                 t >= mine[next].first &&
                                 t < mine[next].second;
            double util;
            if (spiking) {
                // Per-spike amplitude jitter: consecutive bursts of
                // the same benchmark do not hit identical peaks.
                const double amp =
                    0.85 + 0.15 * (0.5 + 0.5 * unitNoise(
                                             cfg.seed ^ 0x5a ^ (n + 1),
                                             next));
                util = virus.signature().maxUtil * amp;
            } else {
                util = restUtil;
            }
            // Fast measurement noise plus a slow (10 s) wander of the
            // background level: both are what makes threshold-based
            // detection statistical rather than binary.
            util *= 1.0 + 0.04 * unitNoise(cfg.seed ^ 0x77 ^ (n + 1),
                                           static_cast<std::uint64_t>(t));
            util *= 1.0 + 0.05 * unitNoise(
                              cfg.seed ^ 0x99 ^ (n + 1),
                              static_cast<std::uint64_t>(t / 10.0));
            trace.push_back(model.power(std::clamp(util, 0.0, 1.0)));
        }
    }
    return out;
}

/**
 * Online monitoring attached to one cluster job: the telemetry hub
 * (created even when the caller did not ask for telemetry, since the
 * alert engine feeds off hub samples) plus the alert engine and the
 * trace-sink adapter that routes curated events into it. Purely
 * observational — attaching it never changes simulation results.
 */
class JobMonitoring
{
  public:
    JobMonitoring(engine::ClusterEngine &dc, bool telemetryEnabled,
                  const alert::RuleSet *rules)
    {
        if (telemetryEnabled || rules) {
            hub = std::make_shared<telemetry::TelemetryHub>();
            dc.setTelemetry(hub.get());
        }
        if (rules) {
            engine = std::make_shared<alert::AlertEngine>(*rules);
            hub->setListener(engine.get());
            // Route curated trace events into the engine, passing
            // them through to whatever sink the thread already had
            // (the run's real trace file, or nothing).
            feed_ = std::make_unique<alert::AlertTraceSink>(
                *engine, obs::currentTraceSink());
            scope_.emplace(feed_.get(), obs::currentTraceJob());
        }
    }

    JobMonitoring(const JobMonitoring &) = delete;
    JobMonitoring &operator=(const JobMonitoring &) = delete;

    /** Stop feeds and seal the engine at sim time @p end. */
    void
    finish(Tick end)
    {
        if (!engine || engine->finalized())
            return;
        hub->setListener(nullptr);
        scope_.reset();
        engine->finalize(end);
    }

    std::shared_ptr<telemetry::TelemetryHub> hub;
    std::shared_ptr<alert::AlertEngine> engine;

  private:
    std::unique_ptr<alert::AlertTraceSink> feed_;
    std::optional<obs::TraceScope> scope_;
};

/** Resolve the data-center config a cluster spec describes. */
core::DataCenterConfig
resolveConfig(const ClusterAttackSpec &spec)
{
    if (spec.config)
        return *spec.config;
    core::DataCenterConfig cfg = clusterConfig(spec.scheme);
    cfg.budgetFraction = spec.budgetFraction;
    cfg.clusterBudgetFraction = spec.clusterBudgetFraction;
    return cfg;
}

/**
 * Build the optional per-job engine profiler: attached only when the
 * experiment asks for it, so the default path stays a null pointer
 * inside the engine and outputs remain byte-identical.
 */
std::unique_ptr<obs::EngineProfiler>
makeProfiler(engine::ClusterEngine &dc, bool profileEngine,
             obs::EngineProfiler::ClockFn clock)
{
    if (!profileEngine)
        return nullptr;
    auto prof = std::make_unique<obs::EngineProfiler>();
    if (clock)
        prof->setClock(clock);
    dc.setProfiler(prof.get());
    return prof;
}

ExperimentResult
runClusterAttack(const ClusterAttackSpec &spec,
                 const ClusterWorkload &cw, std::uint64_t seed,
                 engine::BackendKind backend, bool telemetryEnabled,
                 const alert::RuleSet *rules, bool profileEngine,
                 obs::EngineProfiler::ClockFn profileClock)
{
    core::DataCenterConfig cfg = resolveConfig(spec);
    if (seed != kSpecSeed)
        cfg.seed = seed;
    auto enginePtr =
        engine::makeClusterEngine(backend, cfg, cw.workload.get());
    engine::ClusterEngine &dc = *enginePtr;
    auto prof = makeProfiler(dc, profileEngine, profileClock);
    JobMonitoring mon(dc, telemetryEnabled, rules);
    // Warm up through one night and the next morning so batteries
    // carry realistic state, then strike near the diurnal peak.
    dc.runCoarseUntil(kTicksPerDay +
                      static_cast<Tick>(spec.attackHour *
                                        kTicksPerHour));
    if (spec.initialSoc >= 0.0)
        dc.setAllSoc(spec.initialSoc);

    attack::AttackerConfig ac;
    ac.controlledNodes = spec.nodes;
    ac.kind = spec.kind;
    ac.train = spec.train;
    ac.prepareSec = spec.prepareSec;
    ac.maxDrainSec = spec.maxDrainSec;
    ac.learnRounds = spec.learnRounds;
    ac.recoverSec = spec.recoverSec;
    if (seed != kSpecSeed)
        ac.seed = mix(seed ^ 0xa77ac4);
    attack::TwoPhaseAttacker attacker(ac);

    const double rankWindowSec = spec.rankWindowSec > 0.0
                                     ? spec.rankWindowSec
                                     : spec.durationSec;
    core::AttackScenario sc;
    sc.targetPolicy = core::TargetPolicy::Fixed;
    sc.targetRack = core::rackByLoadPercentile(
        *cw.workload, cfg, dc.now(),
        dc.now() + secondsToTicks(rankWindowSec), spec.victimPct);
    for (int i = 1; i < spec.victimRacks; ++i) {
        const double pct = std::max(
            0.0, spec.victimPct - 5.0 * static_cast<double>(i));
        const int rack = core::rackByLoadPercentile(
            *cw.workload, cfg, dc.now(),
            dc.now() + secondsToTicks(rankWindowSec), pct);
        if (rack != sc.targetRack &&
            std::find(sc.extraVictimRacks.begin(),
                      sc.extraVictimRacks.end(),
                      rack) == sc.extraVictimRacks.end())
            sc.extraVictimRacks.push_back(rack);
    }
    sc.durationSec = spec.durationSec;
    sc.dutyCycle = spec.dutyCycle;

    ExperimentResult out;
    out.kind = ExperimentKind::ClusterAttack;
    out.attackOutcome = dc.runAttack(attacker, sc);
    out.telemetry.detections = dc.detectionsFlagged();
    out.telemetry.autonomySamples = attacker.autonomySamples();
    out.telemetry.socs = dc.allSocs();
    out.telemetry.socStdDevPercent = dc.socStdDevPercent();
    out.stats = std::make_shared<sim::StatsRegistry>();
    dc.exportStats(*out.stats);
    if (prof)
        engine::exportProfilerStats(*prof, *out.stats);
    out.stats
        ->registerScalar("attack.survival_sec",
                         "attack start to first overload")
        .set(out.attackOutcome.survivalSec);
    out.stats
        ->registerScalar("attack.throughput",
                         "benign throughput over the window")
        .set(out.attackOutcome.throughput);
    out.stats
        ->registerCounter("attack.spikes_launched",
                          "hidden spikes launched in Phase II")
        .add(static_cast<std::uint64_t>(
            std::max(0, out.attackOutcome.spikesLaunched)));
    mon.finish(dc.now());
    // The hub only travels with the result when the caller asked for
    // telemetry, so --prom artifacts are identical with or without
    // alerting enabled.
    out.hub = telemetryEnabled ? mon.hub : nullptr;
    out.alerts = mon.engine;
    return out;
}

ExperimentResult
runClusterCoarse(const ClusterCoarseSpec &spec,
                 const ClusterWorkload &cw, std::uint64_t seed,
                 engine::BackendKind backend, bool telemetryEnabled,
                 const alert::RuleSet *rules, bool profileEngine,
                 obs::EngineProfiler::ClockFn profileClock)
{
    core::DataCenterConfig cfg;
    if (spec.config) {
        cfg = *spec.config;
    } else {
        cfg = clusterConfig(spec.scheme);
        if (spec.clusterBudgetFraction > 0.0)
            cfg.clusterBudgetFraction = spec.clusterBudgetFraction;
    }
    if (seed != kSpecSeed)
        cfg.seed = seed;
    auto enginePtr =
        engine::makeClusterEngine(backend, cfg, cw.workload.get());
    engine::ClusterEngine &dc = *enginePtr;
    auto prof = makeProfiler(dc, profileEngine, profileClock);
    JobMonitoring mon(dc, telemetryEnabled, rules);
    dc.setRecordHistory(spec.recordHistory);
    dc.runCoarseUntil(
        static_cast<Tick>(spec.untilHours * kTicksPerHour));

    ExperimentResult out;
    out.kind = ExperimentKind::ClusterCoarse;
    out.telemetry.detections = dc.detectionsFlagged();
    out.telemetry.socs = dc.allSocs();
    out.telemetry.socStdDevPercent = dc.socStdDevPercent();
    out.telemetry.socHistory = dc.socHistory();
    out.telemetry.shedHistory = dc.shedHistory();
    out.stats = std::make_shared<sim::StatsRegistry>();
    dc.exportStats(*out.stats);
    if (prof)
        engine::exportProfilerStats(*prof, *out.stats);
    mon.finish(dc.now());
    out.hub = telemetryEnabled ? mon.hub : nullptr;
    out.alerts = mon.engine;
    return out;
}

} // namespace

ClusterWorkload
makeClusterWorkload(double days, double surgePeriodHours,
                    std::uint64_t seed)
{
    ClusterWorkload cw;
    cw.traceConfig.machines = 220;
    cw.traceConfig.days = days;
    cw.traceConfig.seed = seed;
    cw.traceConfig.surgePeriodHours = surgePeriodHours;
    trace::SyntheticGoogleTrace gen(cw.traceConfig);
    cw.events = gen.generate();
    cw.workload = std::make_unique<trace::Workload>(
        cw.events, cw.traceConfig.machines,
        static_cast<Tick>(days * kTicksPerDay));
    return cw;
}

core::DataCenterConfig
clusterConfig(core::SchemeKind scheme)
{
    core::DataCenterConfig cfg;
    cfg.scheme = scheme;
    cfg.deb = core::defaultDebConfig(cfg.rackNameplate());
    return cfg;
}

Experiment
Experiment::rackLab(RackLabSpec spec, double windowSec)
{
    Experiment e;
    e.kind = ExperimentKind::RackLab;
    e.lab = std::move(spec);
    e.windowSec = windowSec;
    return e;
}

Experiment
Experiment::rackLabServers(RackLabSpec spec, double windowSec)
{
    Experiment e;
    e.kind = ExperimentKind::RackLabServers;
    e.lab = std::move(spec);
    e.windowSec = windowSec;
    return e;
}

Experiment
Experiment::clusterAttack(ClusterAttackSpec spec,
                          const ClusterWorkload &cw)
{
    Experiment e;
    e.kind = ExperimentKind::ClusterAttack;
    e.attack = std::move(spec);
    e.workload = &cw;
    return e;
}

Experiment
Experiment::clusterCoarse(ClusterCoarseSpec spec,
                          const ClusterWorkload &cw)
{
    Experiment e;
    e.kind = ExperimentKind::ClusterCoarse;
    e.coarse = std::move(spec);
    e.workload = &cw;
    return e;
}

const RackLabResult &
ExperimentResult::lab() const
{
    PAD_ASSERT(kind == ExperimentKind::RackLab);
    return labResult;
}

const RackLabServerTrace &
ExperimentResult::servers() const
{
    PAD_ASSERT(kind == ExperimentKind::RackLabServers);
    return serverTraces;
}

const core::AttackOutcome &
ExperimentResult::attack() const
{
    PAD_ASSERT(kind == ExperimentKind::ClusterAttack);
    return attackOutcome;
}

const ClusterTelemetry &
ExperimentResult::cluster() const
{
    PAD_ASSERT(kind == ExperimentKind::ClusterAttack ||
               kind == ExperimentKind::ClusterCoarse);
    return telemetry;
}

ExperimentResult
runExperiment(const Experiment &experiment)
{
    switch (experiment.kind) {
      case ExperimentKind::RackLab: {
          RackLabSpec spec = experiment.lab;
          if (experiment.seed != kSpecSeed)
              spec.seed = experiment.seed;
          ExperimentResult out;
          out.kind = ExperimentKind::RackLab;
          out.labResult = runRackLab(spec, experiment.windowSec);
          out.stats = std::make_shared<sim::StatsRegistry>();
          out.stats
              ->registerCounter("lab.effective_attacks",
                                "overload-limit crossings")
              .add(static_cast<std::uint64_t>(
                  std::max(0, out.labResult.effectiveAttacks)));
          out.stats
              ->registerCounter("lab.spikes_launched",
                                "spikes launched in the window")
              .add(static_cast<std::uint64_t>(
                  std::max(0, out.labResult.spikesLaunched)));
          out.stats
              ->registerScalar("lab.first_overload_sec",
                               "time of first overload; <0 none")
              .set(out.labResult.firstOverloadSec);
          out.stats
              ->registerScalar("lab.battery_out_sec",
                               "battery depletion time; <0 never")
              .set(out.labResult.batteryOutSec);
          return out;
      }
      case ExperimentKind::RackLabServers: {
          RackLabSpec spec = experiment.lab;
          if (experiment.seed != kSpecSeed)
              spec.seed = experiment.seed;
          ExperimentResult out;
          out.kind = ExperimentKind::RackLabServers;
          out.serverTraces =
              runRackLabServers(spec, experiment.windowSec);
          return out;
      }
      case ExperimentKind::ClusterAttack:
        PAD_ASSERT(experiment.workload != nullptr,
                   "cluster experiments need a workload");
        return runClusterAttack(experiment.attack,
                                *experiment.workload,
                                experiment.seed,
                                experiment.backend,
                                experiment.telemetryEnabled,
                                experiment.alertRules.get(),
                                experiment.profileEngine,
                                experiment.profileClock);
      case ExperimentKind::ClusterCoarse:
        PAD_ASSERT(experiment.workload != nullptr,
                   "cluster experiments need a workload");
        return runClusterCoarse(experiment.coarse,
                                *experiment.workload,
                                experiment.seed,
                                experiment.backend,
                                experiment.telemetryEnabled,
                                experiment.alertRules.get(),
                                experiment.profileEngine,
                                experiment.profileClock);
    }
    PAD_PANIC("unreachable experiment kind");
}

} // namespace pad::runner
