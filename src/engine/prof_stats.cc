#include "engine/prof_stats.h"

#include <string>
#include <vector>

namespace pad::engine {

void
exportProfilerStats(const obs::EngineProfiler &prof,
                    sim::StatsRegistry &stats)
{
    using obs::EngineProfiler;

    std::vector<double> phaseSeconds;
    phaseSeconds.reserve(EngineProfiler::kPhaseCount);
    for (std::size_t i = 0; i < EngineProfiler::kPhaseCount; ++i) {
        const auto &t = prof.phases()[i];
        const std::string base =
            "engine.phase." + std::string(EngineProfiler::phaseName(i));
        stats.registerScalar(base + ".seconds",
                             "sampled wall seconds in phase")
            .set(t.seconds);
        stats.registerCounter(base + ".laps", "sampled phase scopes")
            .add(t.laps);
        phaseSeconds.push_back(t.seconds);
    }
    stats.setVector("engine.phase_seconds",
                    "sampled wall seconds per phase (Phase enum order)",
                    std::move(phaseSeconds));

    stats.registerCounter("engine.cache_hits",
                          "demand-cache + malicious-memo hits")
        .add(prof.cacheHits());
    stats.registerCounter("engine.cache_misses",
                          "demand-cache + malicious-memo misses")
        .add(prof.cacheMisses());
    stats.registerCounter("engine.cache.demand.hits",
                          "DemandCache reuse count")
        .add(prof.demandHits());
    stats.registerCounter("engine.cache.demand.misses",
                          "DemandCache rebuild count")
        .add(prof.demandMisses());
    stats.registerCounter("engine.cache.malmemo.hits",
                          "malicious-slot memo reuse count")
        .add(prof.malMemoHits());
    stats.registerCounter("engine.cache.malmemo.misses",
                          "malicious-slot memo evaluation count")
        .add(prof.malMemoMisses());

    stats.registerScalar("engine.queue.depth_highwater",
                         "EventQueue live-event high-water mark")
        .set(static_cast<double>(prof.queueDepthHighWater()));
    stats.registerScalar("engine.arena.bytes",
                         "persistent engine array footprint")
        .set(static_cast<double>(prof.arenaBytes()));
    stats.registerScalar("engine.scratch.bytes",
                         "per-step scratch footprint")
        .set(static_cast<double>(prof.scratchBytes()));

    if (!prof.shardTicks().empty()) {
        std::vector<double> shardTicks;
        shardTicks.reserve(prof.shardTicks().size());
        for (std::uint64_t n : prof.shardTicks())
            shardTicks.push_back(static_cast<double>(n));
        stats.setVector("engine.shard.ticks",
                        "demand refreshes executed per shard",
                        std::move(shardTicks));
    }

    stats.registerScalar("engine.prof.sample_period",
                         "fine ticks per timed sample")
        .set(static_cast<double>(prof.samplePeriod()));
    stats.registerCounter("engine.prof.steps", "engine steps observed")
        .add(prof.steps());
    stats.registerCounter("engine.prof.sampled_steps",
                          "steps with phase timing enabled")
        .add(prof.sampledSteps());
}

} // namespace pad::engine
