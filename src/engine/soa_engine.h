/**
 * @file
 * Structure-of-arrays batch engine.
 *
 * The scalar core::DataCenter keeps per-rack state behind unique_ptr
 * components (BatteryUnit, MicroDeb, CircuitBreaker, PowerMeter) and
 * walks every server's power curve on every tick. This engine lays
 * the same physics out as parallel arrays over racks and servers so
 * the per-tick KiBaM step, demand evaluation and µDEB shaving run as
 * tight batch loops over flat state, with every scratch buffer
 * allocated once at construction (the per-run arena) and reused for
 * the engine's lifetime.
 *
 * Two structural optimizations carry the speedup:
 *
 *  - Per-second benign caching. Benign demand changes only when the
 *    trace slot or the jitter second changes, and the shed/DVFS
 *    state only at control periods, so the per-rack sums over benign
 *    servers (power, uncapped power, demand, executed work, shed
 *    suppression) are rebuilt at most once per simulated second.
 *    Each fine tick then touches only the attacker-controlled
 *    servers — a handful of pow() calls instead of one per server.
 *
 *  - Counter-based demand streams. The fine-grained jitter is a
 *    CounterRng stream per machine (util/random.h), so any shard can
 *    seek directly to its (machine, second) sample in O(1). The
 *    per-second refresh therefore splits across shards with
 *    bit-identical results: setShards(n) parallelizes only that
 *    refresh (disjoint writes, per-rack sums folded in fixed order),
 *    never the physics, so `n` shards produce exactly the serial
 *    engine's bytes.
 *
 * Parity contract (asserted by engine_parity_test / soa_backend_test):
 * the physics per rack — KiBaM wells, LVD, µDEB, breaker, meter —
 * uses the scalar components' arithmetic verbatim, but rack power is
 * summed benign-first rather than in server order, and throughput is
 * accounted per rack rather than per server, so outputs against the
 * scalar engines agree physically (energy conservation, SoC bounds,
 * survival within tolerance) without being bit-identical. Battery
 * aging replicates battery/aging_model.cc per rack (cycle + calendar
 * wear arrays, hooks at the same unitDischarge/unitCharge/unitRest
 * sites as BatteryUnit), so `deb.wear` matches the scalar engines
 * within the parity-test tolerance; everything else in exportStats
 * matches the scalar names too.
 *
 * Supported configurations: RackCabinet DEB placement (the paper's
 * evaluation setup). PerServer placement keeps per-unit state that
 * does not flatten to one-well-per-rack arrays; EnginePlan reports
 * it unsupported and makeClusterEngine falls back to the scalar
 * Optimized backend.
 */

#ifndef PAD_ENGINE_SOA_ENGINE_H
#define PAD_ENGINE_SOA_ENGINE_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/security_policy.h"
#include "core/vdeb.h"
#include "engine/backend.h"
#include "power/server_power_model.h"
#include "sched/load_shedding.h"
#include "sched/perf_monitor.h"
#include "sim/event_queue.h"

namespace pad::engine {

/** Builds SoaEngine instances. */
class SoaBackend final : public EngineBackend
{
  public:
    BackendKind kind() const override { return BackendKind::Soa; }
    EnginePlan prepare(const core::DataCenterConfig &config) const override;
    std::unique_ptr<ClusterEngine>
    create(const core::DataCenterConfig &config,
           const trace::Workload *workload) const override;
};

/** The SoA batch simulation engine. */
class SoaEngine final : public ClusterEngine
{
  public:
    SoaEngine(const core::DataCenterConfig &config,
              const trace::Workload *workload,
              std::size_t eventQueueCapacity);

    void runCoarseUntil(Tick until) override;
    void stepCoarse() override;
    void setRecordHistory(bool on) override { recordHistory_ = on; }
    const std::vector<std::vector<double>> &socHistory() const override
    {
        return socHistory_;
    }
    const std::vector<double> &shedHistory() const override
    {
        return shedHistory_;
    }
    core::AttackOutcome
    runAttack(attack::TwoPhaseAttacker &attacker,
              const core::AttackScenario &scenario) override;
    void setAllSoc(double soc) override;
    Tick now() const override { return now_; }
    std::vector<double> allSocs() const override;
    double socStdDevPercent() const override;
    std::uint64_t detectionsFlagged() const override { return detections_; }
    void setTelemetry(telemetry::TelemetryHub *hub) override
    {
        telemetry_ = hub;
    }
    void setProfiler(obs::EngineProfiler *prof) override;
    void exportStats(sim::StatsRegistry &stats) const override;
    void dumpStats(std::ostream &os) const override;
    const core::DataCenterConfig &config() const override { return config_; }
    BackendKind kind() const override { return BackendKind::Soa; }

    /**
     * Split the per-second demand refresh across @p shards worker
     * threads (1 = serial, the default). Results are bit-identical
     * for every shard count: shard ranges are rack-aligned, writes
     * are disjoint, and each per-rack reduction folds in server
     * order within one shard.
     */
    void setShards(int shards);

    /** Current shard count. */
    int shards() const { return shards_; }

  private:
    /** Memoized KiBaM closed-form coefficients for one dt. */
    struct Coeffs {
        double dt = -1.0;
        double r = 1.0;       ///< exp(-k * dt)
        double kt = 0.0;      ///< k * dt
        double mspDenom = 0.0;
    };

    /** Per-tick power snapshot (arena members, assigned per step). */
    struct StepView {
        double totalPower = 0.0;
        double totalDraw = 0.0;
        double shedSuppressed = 0.0;
    };

    // --- KiBaM batch physics (arithmetic verbatim battery/kibam.cc,
    //     Optimized profile: coefficient cache + scalar bisection) ---
    const Coeffs &coeffsFor(double dt) const;
    void kibamAdvance(std::size_t r, Watts power, double cr, double ckt);
    double availableAfter(std::size_t r, Watts power, double t) const;
    double crossingBisect(std::size_t r, Watts power, double dt) const;
    void clampWells(std::size_t r);
    Watts kibamMsp(std::size_t r, double dt) const;
    Joules kibamStep(std::size_t r, Watts power, double dt);

    // --- DEB unit protection (battery/battery_unit.cc) ---
    void updateLvd(std::size_t r);
    void agingOnDischarge(std::size_t r, Watts power, double dt);
    void agingOnElapsed(std::size_t r, double dt)
    {
        calendarWear_[r] += dt * agingCalendarPerSec_;
    }
    Joules unitDischarge(std::size_t r, Watts requested, double dt);
    Joules unitCharge(std::size_t r, Watts offered, double dt);
    void unitRest(std::size_t r, double dt);
    Watts unitAvailablePower(std::size_t r, double dt) const;
    bool unitUnavailable(std::size_t r) const;

    /** RackState::discharge for the single-cabinet case. */
    Watts rackDischarge(std::size_t r, Watts want, double dtSec,
                        Watts boundW);
    /** ChargeController::recharge for the single-cabinet case. */
    void rackRecharge(std::size_t r, Watts headroom, double dtSec);
    bool wantsCharge(std::size_t r);

    // --- µDEB (core/udeb.cc + battery/supercap.cc) ---
    Joules capUsableEnergy(std::size_t r) const;
    Joules capDischarge(std::size_t r, Watts requested, double dt);
    Joules capCharge(std::size_t r, Watts offered, double dt);
    double udebSoc(std::size_t r) const;
    bool udebDepleted(std::size_t r) const;
    Watts udebShave(std::size_t r, Watts excess, double dt);
    Watts udebRecharge(std::size_t r, Watts headroom, double dt);

    // --- breaker + detector (power/circuit_breaker.cc / power_meter.cc) ---
    bool breakerObserve(std::size_t r, Watts power, double dt);
    void detectorStep(Tick dt);

    // --- demand + benign cache ---
    void refreshDemand(Tick t, bool fine);
    void rebuildBenign(bool attackMode, int maliciousNodes);
    void refreshShardRange(std::size_t rackLo, std::size_t rackHi,
                           bool rebuildBase, bool rebuildValues, bool fine,
                           std::uint64_t second, bool rebuildSums,
                           bool attackMode, int maliciousNodes);

    // --- per-step pipeline (core/datacenter.cc order) ---
    void computeStep(StepView &step, Tick t, double dtSec, bool fine,
                     const attack::TwoPhaseAttacker *attacker,
                     const core::AttackScenario *scenario,
                     double attackRelSec, bool attackerActive,
                     sched::PerfMonitor *windowPerf);
    void applyShaving(StepView &step, double dtSec);
    void fillRackLimits();
    void applyUdeb(StepView &step, double dtSec);
    void rechargeAll(const StepView &step, double dtSec);
    void controlDecisions(const StepView &step, double dtSec);
    void telemetrySample(const StepView &step);

    double rackSoc(std::size_t r) const;
    Joules rackStored(std::size_t r) const { return y1_[r] + y2_[r]; }
    int sheddedServers() const;
    int mostVulnerableRack() const;
    int medianSocRack() const;

    // --- static configuration ---
    core::DataCenterConfig config_;
    core::SchemeTraits traits_;
    const trace::Workload *workload_;
    power::ServerPowerModel serverModel_;
    core::VdebController vdeb_;
    core::SecurityPolicy policy_;
    sched::LoadShedder shedder_;
    sched::PerfMonitor perf_;
    sim::EventQueue queue_;
    int shards_ = 1;

    int racks_;
    int serversPerRack_;
    int machines_;

    // KiBaM parameters shared by every rack cabinet.
    double capJ_;
    double kibamC_;
    double kibamK_;
    double maxDischarge_;
    double maxCharge_;
    double lvdDisconnectSoc_;
    double lvdReconnectSoc_;
    mutable std::array<Coeffs, 4> coeffs_;
    mutable std::size_t coeffsNext_ = 0;

    // --- battery wells + protection, one slot per rack ---
    std::vector<double> y1_;
    std::vector<double> y2_;
    std::vector<double> dischargedJ_;
    std::vector<double> chargedJ_;
    std::vector<std::uint8_t> lvdTripped_;
    std::vector<int> lvdTrips_;
    std::vector<std::uint8_t> chargerLatch_; ///< offline-policy state

    // --- battery aging (battery/aging_model.cc arithmetic) ---
    double agingReferenceRateC_;
    double agingStressExponent_;
    double agingThroughputInv_;   ///< 1 / (cycleLife * capacity)
    double agingCalendarPerSec_;  ///< 1 / (calendarLifeHours * 3600)
    std::vector<double> cycleWear_;
    std::vector<double> calendarWear_;

    // --- µDEB (sized only when the scheme uses it) ---
    bool hasUdeb_;
    std::vector<double> udebVoltage_;
    std::vector<double> udebEngagedFor_;
    std::vector<int> udebEngagements_;
    std::vector<double> udebDischargedJ_;

    // --- breaker ---
    double breakerRated_;
    double breakerHold_;
    double breakerMagnetic_;
    double breakerThermalCap_;
    double breakerCoolTau_;
    std::vector<double> breakerHeat_;
    std::vector<int> breakerTrips_;
    std::vector<Tick> downUntil_;
    int darkRacks_ = 0; ///< racks with a pending restore event

    // --- detector meters ---
    std::vector<Tick> meterNow_;
    std::vector<Tick> meterIntervalStart_;
    std::vector<double> meterEnergy_; ///< watt-ticks

    // --- control state ---
    std::vector<double> dvfs_;
    std::vector<double> vpEnergy_;
    std::vector<std::uint8_t> shed_; ///< per server, rack-major
    bool visiblePeak_ = false;
    core::SecurityLevel level_ = core::SecurityLevel::Normal;
    Tick clusterCapUntil_ = 0;
    std::uint64_t detections_ = 0;
    Tick firstDetectionTick_ = kTickNever;
    Tick firstEscalationTick_ = kTickNever;

    // --- demand cache (per machine) ---
    std::size_t demandSlot_ = static_cast<std::size_t>(-1);
    std::uint64_t demandSecond_ = ~std::uint64_t{0};
    Tick demandTick_ = kTickNever;
    bool demandFine_ = false;
    std::vector<double> demandBase_;
    std::vector<double> demandValues_;

    // --- per-second benign sums (per rack) ---
    bool benignDirty_ = true;
    bool benignAttackMode_ = false;
    int benignMaliciousNodes_ = 0;
    std::vector<double> cachePower_;
    std::vector<double> cacheUncapped_;
    std::vector<double> cacheDemand_;
    std::vector<double> cacheExecuted_;
    std::vector<double> cacheShedSup_;
    // Benign-demand power evaluations for the attacker-controlled
    // slots (victim racks' first maliciousNodes servers), rebuilt
    // with the benign sums above. Fine ticks where the virus does
    // not outbid the benign trace reuse these instead of paying the
    // pow() per slot per tick.
    std::vector<double> malPower_;
    std::vector<double> malUncapped_;
    std::vector<double> malExecuted_;

    // --- per-step arena scratch ---
    std::vector<double> rackPower_;
    std::vector<double> rackDraw_;
    std::vector<double> rackUncapped_;
    std::vector<double> rackShaved_;
    std::vector<Watts> limits_;
    std::vector<Joules> socScratch_;
    core::VdebAssignment planScratch_;

    // --- attack context (valid inside runAttack) ---
    std::vector<std::uint8_t> victimMask_;

    // --- trace/telemetry names, prebuilt per rack ---
    std::vector<std::string> udebName_;
    std::vector<std::string> breakerName_;
    // Full per-rack metric names, prebuilt so the telemetry sampler
    // never concatenates strings on the hot path.
    std::vector<std::string> powerName_;
    std::vector<std::string> drawName_;
    std::vector<std::string> socName_;
    std::vector<std::string> udebSocName_;

    telemetry::TelemetryHub *telemetry_ = nullptr;
    obs::EngineProfiler *prof_ = nullptr;
    Tick now_ = 0;
    bool recordHistory_ = false;
    std::vector<std::vector<double>> socHistory_;
    std::vector<double> shedHistory_;
};

} // namespace pad::engine

#endif // PAD_ENGINE_SOA_ENGINE_H
