/**
 * @file
 * Scalar engine backend: core::DataCenter behind the ClusterEngine
 * interface.
 *
 * One factory serves both scalar kinds (Baseline and Optimized); the
 * only difference is the EngineTuning block the wrapped DataCenter
 * runs under. The tuning block is thread_local and latched in places
 * (the demand unit cache and the event pool mode bind at
 * construction), so the wrapper installs its own tuning around
 * construction and around every forwarded call, then restores the
 * caller's block — an engine's profile never leaks into code running
 * on the same thread after the call returns.
 */

#ifndef PAD_ENGINE_SCALAR_ENGINE_H
#define PAD_ENGINE_SCALAR_ENGINE_H

#include <memory>

#include "core/datacenter.h"
#include "engine/backend.h"
#include "util/engine_tuning.h"

namespace pad::engine {

/** Builds ScalarEngine instances for one scalar profile. */
class ScalarBackend final : public EngineBackend
{
  public:
    explicit ScalarBackend(BackendKind kind);

    BackendKind kind() const override { return kind_; }
    EnginePlan prepare(const core::DataCenterConfig &config) const override;
    std::unique_ptr<ClusterEngine>
    create(const core::DataCenterConfig &config,
           const trace::Workload *workload) const override;

  private:
    BackendKind kind_;
};

/** core::DataCenter run under a pinned EngineTuning block. */
class ScalarEngine final : public ClusterEngine
{
  public:
    ScalarEngine(BackendKind kind, const core::DataCenterConfig &config,
                 const trace::Workload *workload);

    void runCoarseUntil(Tick until) override;
    void stepCoarse() override;
    void setRecordHistory(bool on) override;
    const std::vector<std::vector<double>> &socHistory() const override;
    const std::vector<double> &shedHistory() const override;
    core::AttackOutcome
    runAttack(attack::TwoPhaseAttacker &attacker,
              const core::AttackScenario &scenario) override;
    void setAllSoc(double soc) override;
    Tick now() const override;
    std::vector<double> allSocs() const override;
    double socStdDevPercent() const override;
    std::uint64_t detectionsFlagged() const override;
    void setTelemetry(telemetry::TelemetryHub *hub) override;
    void setProfiler(obs::EngineProfiler *prof) override;
    void exportStats(sim::StatsRegistry &stats) const override;
    void dumpStats(std::ostream &os) const override;
    const core::DataCenterConfig &config() const override;
    BackendKind kind() const override { return kind_; }

    /** The wrapped scalar simulator (tests, migration escape hatch). */
    core::DataCenter &dataCenter() { return *dc_; }

  private:
    /**
     * Installs tuning_ into the calling thread's block for the
     * duration of a forwarded call, restoring the caller's block on
     * scope exit.
     */
    class TuningGuard
    {
      public:
        explicit TuningGuard(const EngineTuning &tuning)
            : saved_(engineTuning())
        {
            engineTuning() = tuning;
        }
        ~TuningGuard() { engineTuning() = saved_; }
        TuningGuard(const TuningGuard &) = delete;
        TuningGuard &operator=(const TuningGuard &) = delete;

      private:
        EngineTuning saved_;
    };

    BackendKind kind_;
    EngineTuning tuning_;
    std::unique_ptr<core::DataCenter> dc_;
};

} // namespace pad::engine

#endif // PAD_ENGINE_SCALAR_ENGINE_H
