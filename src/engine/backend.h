/**
 * @file
 * Explicit engine-backend selection API.
 *
 * PR 4's EngineTuning switches select scalar hot-path optimizations
 * through a (now thread-local) mutable block — good for measuring
 * individual switches, bad as a process-wide mode selector. This
 * header replaces that global mutation path with an explicit,
 * per-run interface: callers pick a BackendKind, a factory prepares
 * and creates a ClusterEngine, and nothing about the choice leaks
 * into other runs or threads.
 *
 * Three backends exist:
 *
 *  - Baseline   — the scalar core::DataCenter with every tuning
 *                 switch off (the pre-optimization reference).
 *  - Optimized  — the scalar core::DataCenter with the default
 *                 switches on; bit-identical outputs to Baseline.
 *                 This is the default backend.
 *  - Soa        — the structure-of-arrays batch engine: rack,
 *                 battery and server state in parallel arrays, the
 *                 per-tick KiBaM step / demand evaluation / µDEB
 *                 shaving as batch loops, arena-backed scratch, and
 *                 counter-based RNG streams. Physically equivalent
 *                 to the scalar engines (energy conservation, SoC
 *                 bounds, survival agreement within tolerance) but
 *                 not bit-identical: its per-rack summation order
 *                 differs by design.
 */

#ifndef PAD_ENGINE_BACKEND_H
#define PAD_ENGINE_BACKEND_H

#include <cstdint>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "attack/attacker.h"
#include "core/config.h"
#include "core/datacenter.h"
#include "obs/prof.h"
#include "sim/stats_registry.h"
#include "telemetry/hub.h"
#include "trace/workload.h"
#include "util/types.h"

namespace pad::engine {

/** Selectable simulation engines. */
enum class BackendKind {
    /** Scalar engine, every hot-path optimization off. */
    Baseline,
    /** Scalar engine, default optimizations on (the default). */
    Optimized,
    /** Structure-of-arrays batch engine (opt-in). */
    Soa,
};

/** Canonical lower-case backend name ("baseline"/"optimized"/"soa"). */
const char *backendName(BackendKind kind);

/** Parse a backend name; nullopt when unknown. */
std::optional<BackendKind> backendFromName(std::string_view name);

/**
 * What a backend would build for a configuration, surfaced before
 * construction so callers can size shared resources (and discover
 * unsupported configurations without paying for a failed build).
 */
struct EnginePlan {
    /** Racks the engine will simulate. */
    int racks = 0;
    /** Total servers across all racks. */
    int servers = 0;
    /**
     * Expected concurrently-live event count for the run's
     * sim::EventQueue — per-run sizing instead of the historical
     * fixed 256-entry arena block.
     */
    std::size_t eventQueueCapacity = 256;
    /** False when the backend cannot run this configuration. */
    bool supported = true;
    /** Human-readable reason when unsupported. */
    std::string note;
};

/**
 * One running cluster simulation behind a backend-neutral interface:
 * the subset of core::DataCenter the runner, benches and CLIs drive.
 * Every method matches the DataCenter semantics documented in
 * core/datacenter.h.
 */
class ClusterEngine
{
  public:
    virtual ~ClusterEngine() = default;

    /** Run coarse (trace-slot) steps until tick @p until. */
    virtual void runCoarseUntil(Tick until) = 0;

    /**
     * Advance exactly one coarse (trace-slot) step. The unit of
     * progress for callers that interleave simulation with external
     * input — the padd service loop paces and applies control
     * commands on these boundaries. runCoarseUntil(t) is equivalent
     * to stepping while now() < t.
     */
    virtual void stepCoarse() = 0;

    /** Enable per-step SOC history recording for map figures. */
    virtual void setRecordHistory(bool on) = 0;

    /** SOC history: one row per coarse step, one column per rack. */
    virtual const std::vector<std::vector<double>> &socHistory() const = 0;

    /** Shed-ratio history aligned with socHistory. */
    virtual const std::vector<double> &shedHistory() const = 0;

    /** Run a fine-grained attack window from the current state. */
    virtual core::AttackOutcome
    runAttack(attack::TwoPhaseAttacker &attacker,
              const core::AttackScenario &scenario) = 0;

    /** Force every DEB and µDEB to a given SOC (scenario setup). */
    virtual void setAllSoc(double soc) = 0;

    /** Present simulation time. */
    virtual Tick now() const = 0;

    /** SOC of every rack. */
    virtual std::vector<double> allSocs() const = 0;

    /** Standard deviation of SOC across racks, in percent. */
    virtual double socStdDevPercent() const = 0;

    /** Anomalies flagged by the optional detector response. */
    virtual std::uint64_t detectionsFlagged() const = 0;

    /** Attach/detach a telemetry hub (not owned; nullptr detaches). */
    virtual void setTelemetry(telemetry::TelemetryHub *hub) = 0;

    /**
     * Attach/detach a self-profiler (not owned; nullptr detaches).
     * Detached — the default — instrumentation is a pointer test and
     * the engine's outputs are byte-identical to an unprofiled build.
     */
    virtual void setProfiler(obs::EngineProfiler *prof) = 0;

    /** Export run telemetry under the stable stat names. */
    virtual void exportStats(sim::StatsRegistry &stats) const = 0;

    /** exportStats() rendered as a gem5-style text dump. */
    virtual void dumpStats(std::ostream &os) const = 0;

    /** Static configuration. */
    virtual const core::DataCenterConfig &config() const = 0;

    /** The backend this engine was built by. */
    virtual BackendKind kind() const = 0;
};

/**
 * Factory for one backend kind. Stateless and shared; per-run state
 * lives in the ClusterEngine it creates.
 */
class EngineBackend
{
  public:
    virtual ~EngineBackend() = default;

    /** The kind this backend builds. */
    virtual BackendKind kind() const = 0;

    /**
     * Size up a run without building it: rack/server counts, the
     * event-queue capacity the engine wants, and whether the
     * configuration is supported at all.
     */
    virtual EnginePlan prepare(const core::DataCenterConfig &config) const = 0;

    /**
     * Build an engine. @p workload is not owned and must outlive the
     * engine. Asserts prepare(config).supported.
     */
    virtual std::unique_ptr<ClusterEngine>
    create(const core::DataCenterConfig &config,
           const trace::Workload *workload) const = 0;
};

/** The shared factory for @p kind. */
const EngineBackend &backendFor(BackendKind kind);

/**
 * Convenience: prepare + create in one call. When @p kind does not
 * support the configuration (e.g. the SoA backend with per-server
 * DEB placement), falls back to the scalar Optimized backend with a
 * warning instead of failing the run.
 */
std::unique_ptr<ClusterEngine>
makeClusterEngine(BackendKind kind, const core::DataCenterConfig &config,
                  const trace::Workload *workload);

} // namespace pad::engine

#endif // PAD_ENGINE_BACKEND_H
