#include "engine/scalar_engine.h"

#include "util/logging.h"

namespace pad::engine {

namespace {

EngineTuning
tuningFor(BackendKind kind)
{
    EngineTuning t; // defaults == Optimized
    if (kind == BackendKind::Baseline) {
        t.kibamCoeffCache = false;
        t.kibamScalarCrossing = false;
        t.kibamNewtonCrossing = false;
        t.serverPowerSharedEval = false;
        t.tickDemandCache = false;
        t.stepScratchReuse = false;
        t.eventPoolAllocation = false;
    }
    return t;
}

std::unique_ptr<core::DataCenter>
buildUnder(const EngineTuning &tuning, const core::DataCenterConfig &config,
           const trace::Workload *workload)
{
    // The DataCenter latches parts of the tuning block (demand unit
    // cache) at construction, so construction itself runs guarded.
    engineTuning() = tuning;
    return std::make_unique<core::DataCenter>(config, workload);
}

} // namespace

ScalarBackend::ScalarBackend(BackendKind kind) : kind_(kind)
{
    PAD_ASSERT(kind == BackendKind::Baseline ||
                   kind == BackendKind::Optimized,
               "ScalarBackend builds scalar kinds only");
}

EnginePlan
ScalarBackend::prepare(const core::DataCenterConfig &config) const
{
    EnginePlan plan;
    plan.racks = config.racks;
    plan.servers = config.totalServers();
    // The scalar DataCenter drives its steps directly; the historical
    // 256-entry default covers its incidental event usage.
    plan.eventQueueCapacity = 256;
    plan.supported = true;
    return plan;
}

std::unique_ptr<ClusterEngine>
ScalarBackend::create(const core::DataCenterConfig &config,
                      const trace::Workload *workload) const
{
    return std::make_unique<ScalarEngine>(kind_, config, workload);
}

ScalarEngine::ScalarEngine(BackendKind kind,
                           const core::DataCenterConfig &config,
                           const trace::Workload *workload)
    : kind_(kind), tuning_(tuningFor(kind))
{
    TuningGuard guard(tuning_);
    dc_ = buildUnder(tuning_, config, workload);
}

void
ScalarEngine::runCoarseUntil(Tick until)
{
    TuningGuard guard(tuning_);
    dc_->runCoarseUntil(until);
}

void
ScalarEngine::stepCoarse()
{
    TuningGuard guard(tuning_);
    dc_->stepCoarse();
}

void
ScalarEngine::setRecordHistory(bool on)
{
    dc_->setRecordHistory(on);
}

const std::vector<std::vector<double>> &
ScalarEngine::socHistory() const
{
    return dc_->socHistory();
}

const std::vector<double> &
ScalarEngine::shedHistory() const
{
    return dc_->shedHistory();
}

core::AttackOutcome
ScalarEngine::runAttack(attack::TwoPhaseAttacker &attacker,
                        const core::AttackScenario &scenario)
{
    TuningGuard guard(tuning_);
    return dc_->runAttack(attacker, scenario);
}

void
ScalarEngine::setAllSoc(double soc)
{
    TuningGuard guard(tuning_);
    dc_->setAllSoc(soc);
}

Tick
ScalarEngine::now() const
{
    return dc_->now();
}

std::vector<double>
ScalarEngine::allSocs() const
{
    return dc_->allSocs();
}

double
ScalarEngine::socStdDevPercent() const
{
    return dc_->socStdDevPercent();
}

std::uint64_t
ScalarEngine::detectionsFlagged() const
{
    return dc_->detectionsFlagged();
}

void
ScalarEngine::setTelemetry(telemetry::TelemetryHub *hub)
{
    dc_->setTelemetry(hub);
}

void
ScalarEngine::setProfiler(obs::EngineProfiler *prof)
{
    dc_->setProfiler(prof);
}

void
ScalarEngine::exportStats(sim::StatsRegistry &stats) const
{
    dc_->exportStats(stats);
}

void
ScalarEngine::dumpStats(std::ostream &os) const
{
    dc_->dumpStats(os);
}

const core::DataCenterConfig &
ScalarEngine::config() const
{
    return dc_->config();
}

} // namespace pad::engine
