/**
 * @file
 * EngineProfiler -> StatsRegistry export.
 *
 * Lives in the engine layer (not obs) on purpose: pad_sim publicly
 * links pad_obs, so the profiler itself must stay sim-free — the same
 * layering that keeps obs::Manifest consuming pre-rendered JSON. The
 * engine layer links both sides and owns the translation.
 *
 * Exported names (all under "engine."):
 *
 *   engine.phase.<name>.seconds   scalar, sampled wall seconds
 *   engine.phase.<name>.laps      counter, sampled scope count
 *   engine.phase_seconds          vector, Phase enum order
 *                                 -> pad_engine_phase_seconds{index}
 *   engine.cache_hits             counter -> pad_engine_cache_hits_total
 *   engine.cache_misses           counter
 *   engine.cache.demand.hits/.misses
 *   engine.cache.malmemo.hits/.misses
 *   engine.queue.depth_highwater  scalar
 *   engine.arena.bytes            scalar
 *   engine.scratch.bytes          scalar
 *   engine.shard.ticks            vector, per-shard refresh counts
 *   engine.prof.sample_period     scalar (scale factor for seconds)
 *   engine.prof.steps             counter
 *   engine.prof.sampled_steps     counter
 */

#ifndef PAD_ENGINE_PROF_STATS_H
#define PAD_ENGINE_PROF_STATS_H

#include "obs/prof.h"
#include "sim/stats_registry.h"

namespace pad::engine {

/** Write the profiler's totals into @p stats under "engine.*". */
void exportProfilerStats(const obs::EngineProfiler &prof,
                         sim::StatsRegistry &stats);

} // namespace pad::engine

#endif // PAD_ENGINE_PROF_STATS_H
