#include "engine/soa_engine.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <thread>

#include "obs/tracer.h"
#include "sched/load_shedding.h"
#include "util/logging.h"

namespace pad::engine {

namespace {

/** Stable pseudo-random shedding priority (core/datacenter.cc). */
int
shedPriority(std::size_t serverIdx)
{
    return static_cast<int>((serverIdx * 2654435761ULL) % 97);
}

/** Numerical slack for well-boundary comparisons, joules. */
constexpr Joules kEps = 1e-9;

} // namespace

EnginePlan
SoaBackend::prepare(const core::DataCenterConfig &config) const
{
    EnginePlan plan;
    plan.racks = config.racks;
    plan.servers = config.totalServers();
    // Rack-restore events, one live at a time per rack, plus slack.
    plan.eventQueueCapacity =
        static_cast<std::size_t>(std::max(config.racks, 1)) + 8;
    if (config.debPlacement !=
        core::DataCenterConfig::DebPlacement::RackCabinet) {
        plan.supported = false;
        plan.note = "per-server BBU placement keeps per-unit state that "
                    "does not flatten to one-well-per-rack arrays";
    }
    return plan;
}

std::unique_ptr<ClusterEngine>
SoaBackend::create(const core::DataCenterConfig &config,
                   const trace::Workload *workload) const
{
    const EnginePlan plan = prepare(config);
    PAD_ASSERT(plan.supported, "SoA backend cannot run this config: {}",
               plan.note);
    return std::make_unique<SoaEngine>(config, workload,
                                       plan.eventQueueCapacity);
}

SoaEngine::SoaEngine(const core::DataCenterConfig &config,
                     const trace::Workload *workload,
                     std::size_t eventQueueCapacity)
    : config_(config),
      traits_(config.overrideTraits ? config.traits
                                    : core::schemeTraits(config.scheme)),
      workload_(workload), serverModel_(config.server),
      vdeb_(config.vdeb), policy_(true), queue_(eventQueueCapacity)
{
    PAD_ASSERT(workload_ != nullptr);
    PAD_ASSERT(config_.racks > 0 && config_.serversPerRack > 0);
    PAD_ASSERT(config_.debPlacement ==
                   core::DataCenterConfig::DebPlacement::RackCabinet,
               "SoA engine supports rack-cabinet DEB placement only");
    PAD_ASSERT(workload_->machines() >= config_.totalServers(),
               "workload has fewer machines than the cluster");

    racks_ = config_.racks;
    serversPerRack_ = config_.serversPerRack;
    machines_ = config_.totalServers();
    const auto nr = static_cast<std::size_t>(racks_);
    const auto nm = static_cast<std::size_t>(machines_);

    // Every cabinet shares one KiBaM parameterization.
    capJ_ = wattHoursToJoules(config_.deb.capacityWh);
    kibamC_ = config_.deb.kibamC;
    kibamK_ = config_.deb.kibamK;
    maxDischarge_ = config_.deb.maxDischargePower;
    maxCharge_ = config_.deb.maxChargePower;
    lvdDisconnectSoc_ = config_.deb.lvdDisconnectSoc;
    lvdReconnectSoc_ = config_.deb.lvdReconnectSoc;
    PAD_ASSERT(capJ_ > 0.0 && kibamC_ > 0.0 && kibamC_ < 1.0 &&
               kibamK_ > 0.0);
    PAD_ASSERT(maxDischarge_ > 0.0);
    PAD_ASSERT(lvdDisconnectSoc_ >= 0.0 &&
               lvdDisconnectSoc_ < lvdReconnectSoc_ &&
               lvdReconnectSoc_ <= 1.0);

    y1_.assign(nr, kibamC_ * capJ_);
    y2_.assign(nr, (1.0 - kibamC_) * capJ_);
    dischargedJ_.assign(nr, 0.0);
    chargedJ_.assign(nr, 0.0);
    lvdTripped_.assign(nr, 0);
    lvdTrips_.assign(nr, 0);
    chargerLatch_.assign(nr, 0);

    // Aging constants hoisted out of the AgingModel arithmetic
    // (battery/aging_model.cc): wear accrual per discharged joule and
    // per elapsed second.
    const battery::AgingModelConfig &aging = config_.deb.aging;
    PAD_ASSERT(aging.cycleLife > 0.0 && aging.referenceRateC > 0.0 &&
               aging.stressExponent >= 0.0 &&
               aging.calendarLifeHours > 0.0);
    agingReferenceRateC_ = aging.referenceRateC;
    agingStressExponent_ = aging.stressExponent;
    agingThroughputInv_ = 1.0 / (aging.cycleLife * capJ_);
    agingCalendarPerSec_ = 1.0 / (aging.calendarLifeHours * 3600.0);
    cycleWear_.assign(nr, 0.0);
    calendarWear_.assign(nr, 0.0);

    hasUdeb_ = traits_.udebSpikes;
    if (hasUdeb_) {
        udebVoltage_.assign(nr, config_.udeb.cap.vMax);
        udebEngagedFor_.assign(nr, 0.0);
        udebEngagements_.assign(nr, 0);
        udebDischargedJ_.assign(nr, 0.0);
    }

    // Same enforcement point as the scalar rack breaker: the soft
    // overload limit without sharing, the hard wire rating with it.
    breakerRated_ =
        traits_.vdebSharing
            ? config_.rackBudget() * config_.rackBreakerMargin
            : config_.rackOverloadLimit();
    breakerHold_ = 1.02;
    breakerMagnetic_ = config_.rackBreaker.magneticRatio;
    breakerThermalCap_ = 0.5;
    breakerCoolTau_ = config_.rackBreaker.coolTau;
    PAD_ASSERT(breakerRated_ > 0.0 && breakerCoolTau_ > 0.0);
    breakerHeat_.assign(nr, 0.0);
    breakerTrips_.assign(nr, 0);
    downUntil_.assign(nr, 0);

    if (config_.detectorResponse) {
        meterNow_.assign(nr, 0);
        meterIntervalStart_.assign(nr, 0);
        meterEnergy_.assign(nr, 0.0);
    }

    dvfs_.assign(nr, 1.0);
    vpEnergy_.assign(nr, 0.0);
    shed_.assign(nm, 0);

    demandBase_.assign(nm, 0.0);
    demandValues_.assign(nm, 0.0);
    cachePower_.assign(nr, 0.0);
    cacheUncapped_.assign(nr, 0.0);
    cacheDemand_.assign(nr, 0.0);
    cacheExecuted_.assign(nr, 0.0);
    cacheShedSup_.assign(nr, 0.0);
    malPower_.assign(nm, 0.0);
    malUncapped_.assign(nm, 0.0);
    malExecuted_.assign(nm, 0.0);

    rackPower_.assign(nr, 0.0);
    rackDraw_.assign(nr, 0.0);
    rackUncapped_.assign(nr, 0.0);
    rackShaved_.assign(nr, 0.0);
    limits_.assign(nr, 0.0);
    socScratch_.assign(nr, 0.0);
    planScratch_.power.assign(nr, 0.0);
    victimMask_.assign(nr, 0);

    udebName_.reserve(nr);
    breakerName_.reserve(nr);
    powerName_.reserve(nr);
    drawName_.reserve(nr);
    socName_.reserve(nr);
    udebSocName_.reserve(nr);
    for (int r = 0; r < racks_; ++r) {
        const std::string base = "rack" + std::to_string(r);
        udebName_.push_back(base + ".udeb");
        breakerName_.push_back(base + ".breaker");
        powerName_.push_back(base + ".power");
        drawName_.push_back(base + ".draw");
        socName_.push_back(base + ".soc");
        udebSocName_.push_back(base + ".udeb_soc");
    }
}

void
SoaEngine::setShards(int shards)
{
    PAD_ASSERT(shards >= 1, "shard count must be positive");
    shards_ = std::min(shards, racks_);
    if (prof_)
        prof_->setShardCount(static_cast<std::size_t>(shards_));
}

void
SoaEngine::setProfiler(obs::EngineProfiler *prof)
{
    prof_ = prof;
    if (!prof_)
        return;
    prof_->setShardCount(static_cast<std::size_t>(shards_));
    const auto dbytes = [](const std::vector<double> &v) {
        return v.capacity() * sizeof(double);
    };
    // Arena: the construct-once rack/server parallel arrays and the
    // per-second caches.
    std::size_t arena =
        dbytes(y1_) + dbytes(y2_) + dbytes(dischargedJ_) +
        dbytes(chargedJ_) + lvdTripped_.capacity() +
        lvdTrips_.capacity() * sizeof(int) + chargerLatch_.capacity() +
        dbytes(cycleWear_) + dbytes(calendarWear_) +
        dbytes(udebVoltage_) + dbytes(udebEngagedFor_) +
        udebEngagements_.capacity() * sizeof(int) +
        dbytes(udebDischargedJ_) + dbytes(breakerHeat_) +
        breakerTrips_.capacity() * sizeof(int) +
        downUntil_.capacity() * sizeof(Tick) +
        meterNow_.capacity() * sizeof(Tick) +
        meterIntervalStart_.capacity() * sizeof(Tick) +
        dbytes(meterEnergy_) + dbytes(dvfs_) + dbytes(vpEnergy_) +
        shed_.capacity() + dbytes(demandBase_) + dbytes(demandValues_) +
        dbytes(cachePower_) + dbytes(cacheUncapped_) +
        dbytes(cacheDemand_) + dbytes(cacheExecuted_) +
        dbytes(cacheShedSup_) + dbytes(malPower_) +
        dbytes(malUncapped_) + dbytes(malExecuted_);
    // Scratch: buffers reassigned every step.
    std::size_t scratch = dbytes(rackPower_) + dbytes(rackDraw_) +
                          dbytes(rackUncapped_) + dbytes(rackShaved_) +
                          dbytes(limits_) + dbytes(socScratch_) +
                          planScratch_.power.capacity() * sizeof(double);
    prof_->setArenaBytes(arena);
    prof_->setScratchBytes(scratch);
}

// ---------------------------------------------------------------------
// KiBaM batch physics (battery/kibam.cc arithmetic, verbatim)
// ---------------------------------------------------------------------

const SoaEngine::Coeffs &
SoaEngine::coeffsFor(double dt) const
{
    for (const Coeffs &c : coeffs_)
        if (c.dt == dt)
            return c;
    // Each stored value is the whole original expression — never a
    // refactored regrouping — so reuse cannot change a bit downstream.
    Coeffs &c = coeffs_[coeffsNext_];
    coeffsNext_ = (coeffsNext_ + 1) % coeffs_.size();
    const double r = std::exp(-kibamK_ * dt);
    const double kt = kibamK_ * dt;
    c.dt = dt;
    c.r = r;
    c.kt = kt;
    c.mspDenom = ((1.0 - r) + kibamC_ * (kt - 1.0 + r)) / kibamK_;
    return c;
}

void
SoaEngine::kibamAdvance(std::size_t r, Watts power, double cr, double ckt)
{
    // Manwell-McGowan closed form for constant power over dt.
    const double k = kibamK_;
    const double c = kibamC_;
    const double y0 = y1_[r] + y2_[r];
    const double y1n = y1_[r] * cr +
                       (y0 * k * c - power) * (1.0 - cr) / k -
                       power * c * (ckt - 1.0 + cr) / k;
    const double y2n = y2_[r] * cr + y0 * (1.0 - c) * (1.0 - cr) -
                       power * (1.0 - c) * (ckt - 1.0 + cr) / k;
    y1_[r] = y1n;
    y2_[r] = y2n;
}

double
SoaEngine::availableAfter(std::size_t r, Watts power, double t) const
{
    const double k = kibamK_;
    const double c = kibamC_;
    const double y0 = y1_[r] + y2_[r];
    const double er = std::exp(-k * t);
    const double kt = k * t;
    return y1_[r] * er + (y0 * k * c - power) * (1.0 - er) / k -
           power * c * (kt - 1.0 + er) / k;
}

double
SoaEngine::crossingBisect(std::size_t r, Watts power, double dt) const
{
    // The same 60 dyadic midpoints, y1 arithmetic and sign test as the
    // scalar bisection, so the crossing is bit-identical to it.
    double lo = 0.0, hi = dt;
    for (int iter = 0; iter < 60; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (availableAfter(r, power, mid) > 0.0)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

void
SoaEngine::clampWells(std::size_t r)
{
    y1_[r] = std::clamp(y1_[r], 0.0, kibamC_ * capJ_);
    y2_[r] = std::clamp(y2_[r], 0.0, (1.0 - kibamC_) * capJ_);
}

Watts
SoaEngine::kibamMsp(std::size_t r, double dt) const
{
    PAD_ASSERT(dt > 0.0);
    const Coeffs &cc = coeffsFor(dt);
    const double numer =
        y1_[r] * cc.r + (y1_[r] + y2_[r]) * kibamC_ * (1.0 - cc.r);
    if (cc.mspDenom <= 0.0)
        return 0.0;
    return std::max(0.0, numer / cc.mspDenom);
}

Joules
SoaEngine::kibamStep(std::size_t r, Watts power, double dt)
{
    PAD_ASSERT(dt >= 0.0);
    if (dt == 0.0 || power == 0.0) {
        // Even with no load the wells equalize.
        if (dt > 0.0) {
            const Coeffs &cc = coeffsFor(dt);
            kibamAdvance(r, 0.0, cc.r, cc.kt);
            clampWells(r);
        }
        return 0.0;
    }

    if (power > 0.0) {
        const Watts sustainable = kibamMsp(r, dt);
        if (power <= sustainable) {
            const Coeffs &cc = coeffsFor(dt);
            kibamAdvance(r, power, cc.r, cc.kt);
            clampWells(r);
            return power * dt;
        }
        if (sustainable <= 0.0) {
            const Coeffs &cc = coeffsFor(dt);
            kibamAdvance(r, 0.0, cc.r, cc.kt);
            clampWells(r);
            return 0.0;
        }
        // Deliver until y1 empties, then rest for the remainder.
        const double tcross = crossingBisect(r, power, dt);
        {
            const Coeffs &cc = coeffsFor(tcross);
            kibamAdvance(r, power, cc.r, cc.kt);
            clampWells(r);
        }
        y1_[r] = 0.0;
        {
            const Coeffs &cc = coeffsFor(dt - tcross);
            kibamAdvance(r, 0.0, cc.r, cc.kt);
            clampWells(r);
        }
        return power * tcross;
    }

    // Charging: conservation first — split accepted charge across the
    // wells, spilling overflow, then apply the kinetic equalization.
    const Joules room = capJ_ - (y1_[r] + y2_[r]);
    const Joules accepted = std::min(-power * dt, room);
    if (accepted > 0.0) {
        const Joules y1room = kibamC_ * capJ_ - y1_[r];
        const Joules y2room = (1.0 - kibamC_) * capJ_ - y2_[r];
        Joules toY1 = std::min(accepted * kibamC_, y1room);
        Joules toY2 = std::min(accepted - toY1, y2room);
        toY1 += std::min(accepted - toY1 - toY2, y1room - toY1);
        y1_[r] += toY1;
        y2_[r] += toY2;
    }
    const Coeffs &cc = coeffsFor(dt);
    kibamAdvance(r, 0.0, cc.r, cc.kt);
    clampWells(r);
    return -accepted;
}

// ---------------------------------------------------------------------
// DEB unit protection (battery/battery_unit.cc; aging not tracked)
// ---------------------------------------------------------------------

void
SoaEngine::updateLvd(std::size_t r)
{
    // The LVD tracks the available-well head, not total charge.
    const double head = y1_[r] / (kibamC_ * capJ_);
    if (!lvdTripped_[r]) {
        if (head <= lvdDisconnectSoc_ + 1e-9 || y1_[r] <= kEps) {
            lvdTripped_[r] = 1;
            ++lvdTrips_[r];
        }
    } else if (head >= lvdReconnectSoc_) {
        lvdTripped_[r] = 0;
    }
}

Joules
SoaEngine::unitDischarge(std::size_t r, Watts requested, double dt)
{
    PAD_ASSERT(requested >= 0.0 && dt >= 0.0);
    if (dt == 0.0 || requested == 0.0 || lvdTripped_[r]) {
        unitRest(r, dt);
        return 0.0;
    }
    const Watts bounded = std::min(requested, maxDischarge_);
    const Joules floor = lvdDisconnectSoc_ * capJ_;
    const Joules headroom = std::max(0.0, rackStored(r) - floor);
    Joules delivered = 0.0;
    const Joules want = bounded * dt;
    if (want <= headroom) {
        delivered = kibamStep(r, bounded, dt);
    } else {
        // Deliver until the LVD floor, then rest for the remainder.
        const double tcut = headroom / bounded;
        delivered = kibamStep(r, bounded, tcut);
        kibamStep(r, 0.0, dt - tcut);
    }
    dischargedJ_[r] += delivered;
    agingOnDischarge(r, delivered / dt, dt);
    agingOnElapsed(r, dt);
    updateLvd(r);
    return delivered;
}

Joules
SoaEngine::unitCharge(std::size_t r, Watts offered, double dt)
{
    PAD_ASSERT(offered >= 0.0 && dt >= 0.0);
    if (dt == 0.0 || offered == 0.0) {
        unitRest(r, dt);
        return 0.0;
    }
    const Watts bounded = std::min(offered, maxCharge_);
    const Joules absorbed = -kibamStep(r, -bounded, dt);
    chargedJ_[r] += absorbed;
    agingOnElapsed(r, dt);
    updateLvd(r);
    return absorbed;
}

void
SoaEngine::unitRest(std::size_t r, double dt)
{
    if (dt > 0.0) {
        kibamStep(r, 0.0, dt);
        agingOnElapsed(r, dt);
        updateLvd(r);
    }
}

void
SoaEngine::agingOnDischarge(std::size_t r, Watts power, double dt)
{
    // battery/aging_model.cc::onDischarge with the lifetime
    // throughput divisor pre-inverted.
    if (power <= 0.0 || dt <= 0.0)
        return;
    const Joules energy = power * dt;
    const double rateC = power * 3600.0 / capJ_;
    double stress = 1.0;
    if (rateC > agingReferenceRateC_)
        stress = std::pow(rateC / agingReferenceRateC_,
                          agingStressExponent_);
    cycleWear_[r] += stress * energy * agingThroughputInv_;
}

Watts
SoaEngine::unitAvailablePower(std::size_t r, double dt) const
{
    if (lvdTripped_[r])
        return 0.0;
    const Watts sustainable = kibamMsp(r, dt);
    const Joules floor = lvdDisconnectSoc_ * capJ_;
    const Joules headroom = std::max(0.0, rackStored(r) - floor);
    const Watts byEnergy = headroom / dt;
    return std::min({sustainable, byEnergy, maxDischarge_});
}

bool
SoaEngine::unitUnavailable(std::size_t r) const
{
    return lvdTripped_[r] || y1_[r] <= kEps;
}

Watts
SoaEngine::rackDischarge(std::size_t r, Watts want, double dtSec,
                         Watts boundW)
{
    // RackState::discharge for the single-cabinet case: the unit's
    // SOC-proportional share of its own rack is exactly 1.
    if (want <= 0.0) {
        unitRest(r, dtSec);
        return 0.0;
    }
    const double share = rackStored(r) > 0.0 ? 1.0 : 0.0;
    const Watts ask = std::min(want * share, boundW);
    if (ask > 0.0)
        return unitDischarge(r, ask, dtSec) / dtSec;
    unitRest(r, dtSec);
    return 0.0;
}

bool
SoaEngine::wantsCharge(std::size_t r)
{
    if (config_.charge.kind == battery::ChargePolicyKind::Online)
        return std::clamp(rackStored(r) / capJ_, 0.0, 1.0) < 0.999;
    const double soc = std::clamp(rackStored(r) / capJ_, 0.0, 1.0);
    if (chargerLatch_[r]) {
        if (soc >= config_.charge.offlineStopSoc)
            chargerLatch_[r] = 0;
    } else if (soc <= config_.charge.offlineStartSoc) {
        chargerLatch_[r] = 1;
    }
    return chargerLatch_[r];
}

void
SoaEngine::rackRecharge(std::size_t r, Watts headroom, double dtSec)
{
    PAD_ASSERT(dtSec >= 0.0);
    if (headroom <= 0.0 || dtSec == 0.0)
        return;
    if (!wantsCharge(r))
        return;
    const Watts offer = std::min(headroom, maxCharge_);
    unitCharge(r, offer, dtSec);
}

// ---------------------------------------------------------------------
// µDEB (core/udeb.cc + battery/supercap.cc)
// ---------------------------------------------------------------------

Joules
SoaEngine::capUsableEnergy(std::size_t r) const
{
    const auto &cap = config_.udeb.cap;
    const double v2 = udebVoltage_[r] * udebVoltage_[r];
    const double vmin2 = cap.vMin * cap.vMin;
    return std::max(0.0, 0.5 * cap.capacitanceF * (v2 - vmin2));
}

Joules
SoaEngine::capDischarge(std::size_t r, Watts requested, double dt)
{
    PAD_ASSERT(requested >= 0.0 && dt >= 0.0);
    if (requested == 0.0 || dt == 0.0 || udebDepleted(r))
        return 0.0;
    const auto &cap = config_.udeb.cap;
    const Watts bounded = std::min(requested, cap.maxPower);
    const Joules wantFromBank = bounded * dt / cap.efficiency;
    const Joules fromBank = std::min(wantFromBank, capUsableEnergy(r));
    const double v2 = udebVoltage_[r] * udebVoltage_[r] -
                      2.0 * fromBank / cap.capacitanceF;
    udebVoltage_[r] = std::sqrt(std::max(v2, cap.vMin * cap.vMin));
    const Joules delivered = fromBank * cap.efficiency;
    udebDischargedJ_[r] += delivered;
    ++udebEngagements_[r];
    return delivered;
}

Joules
SoaEngine::capCharge(std::size_t r, Watts offered, double dt)
{
    PAD_ASSERT(offered >= 0.0 && dt >= 0.0);
    if (offered == 0.0 || dt == 0.0)
        return 0.0;
    const auto &cap = config_.udeb.cap;
    const Joules room =
        0.5 * cap.capacitanceF *
        (cap.vMax * cap.vMax - udebVoltage_[r] * udebVoltage_[r]);
    const Joules absorbed = std::min(offered * dt, room);
    const double v2 = udebVoltage_[r] * udebVoltage_[r] +
                      2.0 * absorbed / cap.capacitanceF;
    udebVoltage_[r] = std::min(std::sqrt(v2), cap.vMax);
    return absorbed;
}

double
SoaEngine::udebSoc(std::size_t r) const
{
    const auto &cap = config_.udeb.cap;
    const Joules usableCap =
        0.5 * cap.capacitanceF *
        (cap.vMax * cap.vMax - cap.vMin * cap.vMin);
    return std::clamp(capUsableEnergy(r) / usableCap, 0.0, 1.0);
}

bool
SoaEngine::udebDepleted(std::size_t r) const
{
    return capUsableEnergy(r) <= kEps;
}

Watts
SoaEngine::udebShave(std::size_t r, Watts excess, double dt)
{
    PAD_ASSERT(excess >= 0.0 && dt >= 0.0);
    if (excess <= 0.0 || dt == 0.0) {
        udebEngagedFor_[r] = 0.0;
        return 0.0;
    }
    // Engagement-duration guard: the ORing backs off when the "spike"
    // turns out to be a sustained peak.
    if (udebEngagedFor_[r] >= config_.udeb.maxEngagementSec)
        return 0.0;
    const double window =
        std::min(dt, config_.udeb.maxEngagementSec - udebEngagedFor_[r]);
    const Joules delivered = capDischarge(r, excess, window);
    udebEngagedFor_[r] += dt;
    const Watts shaved = delivered / dt;
    if (shaved > 0.0 && obs::traceEnabled())
        obs::emit(udebName_[r], "udeb.shave",
                  {obs::TraceField::num("excess_w", excess),
                   obs::TraceField::num("shaved_w", shaved),
                   obs::TraceField::num("soc", udebSoc(r)),
                   obs::TraceField::num("engaged_sec",
                                        udebEngagedFor_[r])});
    return shaved;
}

Watts
SoaEngine::udebRecharge(std::size_t r, Watts headroom, double dt)
{
    PAD_ASSERT(dt >= 0.0);
    udebEngagedFor_[r] = 0.0;
    if (headroom <= 0.0 || dt == 0.0)
        return 0.0;
    const Watts offer = std::min(headroom, config_.udeb.rechargePower);
    return capCharge(r, offer, dt) / dt;
}

// ---------------------------------------------------------------------
// Breaker + detector (power/circuit_breaker.cc / power_meter.cc)
// ---------------------------------------------------------------------

bool
SoaEngine::breakerObserve(std::size_t r, Watts power, double dt)
{
    PAD_ASSERT(dt >= 0.0);
    if (dt == 0.0)
        return false;
    const double ratio = power / breakerRated_;
    if (ratio >= breakerMagnetic_) {
        ++breakerTrips_[r];
        if (obs::traceEnabled())
            obs::emit(breakerName_[r], "breaker.trip",
                      {obs::TraceField::str("cause", "magnetic"),
                       obs::TraceField::num("draw_w", power),
                       obs::TraceField::num("ratio", ratio)});
        return true;
    }
    if (ratio > breakerHold_) {
        breakerHeat_[r] += (ratio * ratio - 1.0) * dt;
        if (breakerHeat_[r] >= breakerThermalCap_) {
            ++breakerTrips_[r];
            if (obs::traceEnabled())
                obs::emit(breakerName_[r], "breaker.trip",
                          {obs::TraceField::str("cause", "thermal"),
                           obs::TraceField::num("draw_w", power),
                           obs::TraceField::num("ratio", ratio),
                           obs::TraceField::num("heat",
                                                breakerHeat_[r])});
            return true;
        }
    } else {
        breakerHeat_[r] *= std::exp(-dt / breakerCoolTau_);
    }
    return false;
}

void
SoaEngine::detectorStep(Tick dt)
{
    if (!config_.detectorResponse)
        return;
    for (std::size_t r = 0; r < static_cast<std::size_t>(racks_); ++r) {
        Tick remaining = dt;
        while (remaining > 0) {
            const Tick intervalEnd =
                meterIntervalStart_[r] + config_.detectorInterval;
            const Tick slice =
                std::min(remaining, intervalEnd - meterNow_[r]);
            meterEnergy_[r] +=
                rackDraw_[r] * static_cast<double>(slice);
            meterNow_[r] += slice;
            remaining -= slice;
            if (meterNow_[r] != intervalEnd)
                continue;
            const Watts avg =
                meterEnergy_[r] /
                static_cast<double>(config_.detectorInterval);
            meterIntervalStart_ [r] += config_.detectorInterval;
            meterEnergy_[r] = 0.0;
            // Flag when the metered average rises measurably above
            // the rack's rolling expectation.
            if (vpEnergy_[r] > 0.0 &&
                avg > vpEnergy_[r] * (1.0 + config_.detectorMargin)) {
                ++detections_;
                if (firstDetectionTick_ == kTickNever)
                    firstDetectionTick_ = now_;
                clusterCapUntil_ =
                    now_ + secondsToTicks(config_.detectorCapHoldSec);
                if (obs::traceEnabled())
                    obs::emit(
                        "detector", "detector.anomaly",
                        {obs::TraceField::integer(
                             "rack", static_cast<std::int64_t>(r)),
                         obs::TraceField::num("avg_w", avg),
                         obs::TraceField::num("expected_w",
                                              vpEnergy_[r])});
            }
        }
    }
}

// ---------------------------------------------------------------------
// Demand + benign cache
// ---------------------------------------------------------------------

void
SoaEngine::rebuildBenign(bool attackMode, int maliciousNodes)
{
    if (attackMode != benignAttackMode_ ||
        maliciousNodes != benignMaliciousNodes_) {
        benignAttackMode_ = attackMode;
        benignMaliciousNodes_ = maliciousNodes;
        benignDirty_ = true;
    }
}

void
SoaEngine::refreshShardRange(std::size_t rackLo, std::size_t rackHi,
                             bool rebuildBase, bool rebuildValues,
                             bool fine, std::uint64_t second,
                             bool rebuildSums, bool attackMode,
                             int maliciousNodes)
{
    const auto perRack = static_cast<std::size_t>(serversPerRack_);
    if (rebuildBase) {
        for (std::size_t m = rackLo * perRack; m < rackHi * perRack; ++m)
            demandBase_[m] = workload_->utilAtSlot(static_cast<int>(m),
                                                   demandSlot_);
    }
    if (rebuildValues) {
        if (fine) {
            // CounterRng-backed jitter: each (machine, second) sample
            // is an O(1) seek, so any shard regenerates its slice
            // independently with the exact bits the serial pass gets.
            for (std::size_t m = rackLo * perRack; m < rackHi * perRack;
                 ++m)
                demandValues_[m] = trace::Workload::combineFine(
                    demandBase_[m],
                    trace::Workload::jitterAt(static_cast<int>(m),
                                              second),
                    trace::kDefaultFineNoiseAmp);
        } else {
            for (std::size_t m = rackLo * perRack; m < rackHi * perRack;
                 ++m)
                demandValues_[m] = demandBase_[m];
        }
    }
    if (!rebuildSums)
        return;
    for (std::size_t r = rackLo; r < rackHi; ++r) {
        const bool victimRack = attackMode && victimMask_[r];
        const double dvfs = dvfs_[r];
        const std::size_t rackBase = r * perRack;
        double power = 0.0, uncapped = 0.0, demand = 0.0;
        double executed = 0.0, shedSup = 0.0;
        for (std::size_t s = 0; s < perRack; ++s) {
            if (victimRack &&
                s < static_cast<std::size_t>(maliciousNodes)) {
                // Attacker-controlled: excluded from the benign sums
                // (re-summed per fine tick), but its benign-demand
                // evaluation is cached so ticks where the virus does
                // not outbid the trace skip the pow().
                const std::size_t idx = rackBase + s;
                serverModel_.evaluate(demandValues_[idx], dvfs,
                                      malPower_[idx],
                                      malUncapped_[idx],
                                      malExecuted_[idx]);
                continue;
            }
            const std::size_t idx = rackBase + s;
            const double d = demandValues_[idx];
            demand += d;
            if (shed_[idx]) {
                power += config_.sleepPower;
                shedSup +=
                    serverModel_.power(d, dvfs) - config_.sleepPower;
            } else {
                double p, unc, e;
                serverModel_.evaluate(d, dvfs, p, unc, e);
                power += p;
                uncapped += unc;
                executed += e;
            }
        }
        cachePower_[r] = power;
        cacheUncapped_[r] = uncapped;
        cacheDemand_[r] = demand;
        cacheExecuted_[r] = executed;
        cacheShedSup_[r] = shedSup;
    }
}

void
SoaEngine::refreshDemand(Tick t, bool fine)
{
    const std::size_t slot = workload_->slotAt(t);
    const auto second =
        fine ? static_cast<std::uint64_t>(t / kTicksPerSecond)
             : ~std::uint64_t{0};
    const bool rebuildBase = slot != demandSlot_;
    const bool rebuildValues =
        rebuildBase || (fine != demandFine_) ||
        (fine && second != demandSecond_);
    const bool rebuildSums = rebuildValues || benignDirty_;
    demandTick_ = t;
    if (!rebuildBase && !rebuildValues && !rebuildSums) {
        if (prof_)
            prof_->demandHit();
        return;
    }
    if (prof_)
        prof_->demandMiss();
    const obs::PhaseScope profScope(
        prof_, obs::EngineProfiler::Phase::DemandEval);
    demandSlot_ = slot;

    const auto nRacks = static_cast<std::size_t>(racks_);
    if (shards_ <= 1) {
        if (prof_)
            prof_->shardTick(0);
        refreshShardRange(0, nRacks, rebuildBase, rebuildValues, fine,
                          second, rebuildSums, benignAttackMode_,
                          benignMaliciousNodes_);
    } else {
        // Rack-aligned shard ranges: writes are disjoint and every
        // per-rack reduction folds in server order inside one shard,
        // so the result is bit-identical for any shard count.
        const obs::PhaseScope mergeScope(
            prof_, obs::EngineProfiler::Phase::ShardMerge);
        const std::size_t per =
            (nRacks + static_cast<std::size_t>(shards_) - 1) /
            static_cast<std::size_t>(shards_);
        std::vector<std::thread> workers;
        workers.reserve(static_cast<std::size_t>(shards_));
        std::size_t shard = 0;
        for (std::size_t lo = 0; lo < nRacks; lo += per, ++shard) {
            const std::size_t hi = std::min(nRacks, lo + per);
            if (prof_)
                prof_->shardTick(shard);
            workers.emplace_back([this, lo, hi, rebuildBase,
                                  rebuildValues, fine, second,
                                  rebuildSums] {
                refreshShardRange(lo, hi, rebuildBase, rebuildValues,
                                  fine, second, rebuildSums,
                                  benignAttackMode_,
                                  benignMaliciousNodes_);
            });
        }
        for (auto &w : workers)
            w.join();
    }
    demandSecond_ = second;
    demandFine_ = fine;
    benignDirty_ = false;
}

// ---------------------------------------------------------------------
// Per-step pipeline (core/datacenter.cc order)
// ---------------------------------------------------------------------

void
SoaEngine::computeStep(StepView &step, Tick t, double dtSec, bool fine,
                       const attack::TwoPhaseAttacker *attacker,
                       const core::AttackScenario *scenario,
                       double attackRelSec, bool attackerActive,
                       sched::PerfMonitor *windowPerf)
{
    refreshDemand(t, fine);
    step.totalPower = 0.0;
    step.totalDraw = 0.0;
    step.shedSuppressed = 0.0;

    // The virus program is node-independent: every controlled slot
    // demands the same utilization at the same instant. Evaluate it
    // once per tick and memoize the power-model bundle per distinct
    // DVFS level; slots the virus does not outbid fall back to the
    // per-second cache built with the benign sums. Both paths call
    // the exact evaluate() the per-slot walk would, so the sums stay
    // bit-identical.
    const double atkUtil = (attacker && scenario && attackerActive)
                               ? attacker->demandedUtil(0, attackRelSec)
                               : -1.0;
    double memoDvfs = -1.0;
    double memoPower = 0.0, memoUncapped = 0.0, memoExecuted = 0.0;

    const auto perRack = static_cast<std::size_t>(serversPerRack_);
    for (std::size_t r = 0; r < static_cast<std::size_t>(racks_); ++r) {
        // A rack whose breaker tripped is dark until service is
        // restored; its demanded (benign) work is lost outright.
        if (darkRacks_ > 0 && t < downUntil_[r]) {
            perf_.recordShed(cacheDemand_[r], dtSec);
            if (windowPerf)
                windowPerf->recordShed(cacheDemand_[r], dtSec);
            rackPower_[r] = 0.0;
            rackUncapped_[r] = 0.0;
            continue;
        }

        double rackTotal = cachePower_[r];
        double rackUncapped = cacheUncapped_[r];
        step.shedSuppressed += cacheShedSup_[r];

        const bool attackedRack =
            attacker && scenario && victimMask_[r];
        if (attackedRack) {
            const double dvfs = dvfs_[r];
            const std::size_t rackBase = r * perRack;
            for (int s = 0; s < scenario->maliciousNodes; ++s) {
                const std::size_t idx =
                    rackBase + static_cast<std::size_t>(s);
                const double benignU = demandValues_[idx];
                if (shed_[idx]) {
                    rackTotal += config_.sleepPower;
                    step.shedSuppressed +=
                        serverModel_.power(std::max(benignU, atkUtil),
                                           dvfs) -
                        config_.sleepPower;
                } else if (atkUtil > benignU) {
                    if (dvfs != memoDvfs) {
                        if (prof_)
                            prof_->malMemoMiss();
                        serverModel_.evaluate(atkUtil, dvfs, memoPower,
                                              memoUncapped,
                                              memoExecuted);
                        memoDvfs = dvfs;
                    } else if (prof_) {
                        prof_->malMemoHit();
                    }
                    rackTotal += memoPower;
                    rackUncapped += memoUncapped;
                } else {
                    if (prof_)
                        prof_->malMemoHit();
                    rackTotal += malPower_[idx];
                    rackUncapped += malUncapped_[idx];
                }
            }
        }
        // Benign work is charged per rack from the cached sums; the
        // scalar engine charges it per server (same totals, different
        // FP fold — the documented tolerance-parity point).
        perf_.record(cacheDemand_[r], cacheExecuted_[r], dtSec);
        if (windowPerf)
            windowPerf->record(cacheDemand_[r], cacheExecuted_[r],
                               dtSec);
        rackPower_[r] = rackTotal;
        rackUncapped_[r] = rackUncapped;
        step.totalPower += rackTotal;
    }
}

void
SoaEngine::applyShaving(StepView &step, double dtSec)
{
    const Watts budget = config_.rackBudget();
    const Watts hardLimit = budget * config_.rackBreakerMargin;
    const auto nRacks = static_cast<std::size_t>(racks_);

    if (traits_.vdebSharing) {
        // Cluster-level assignment (Algorithm 1) against the PDU
        // budget, recomputed from live SOC each step.
        for (std::size_t r = 0; r < nRacks; ++r)
            socScratch_[r] = rackStored(r);
        vdeb_.assignInto(socScratch_, step.totalPower,
                         config_.clusterBudget(), planScratch_);
        for (std::size_t r = 0; r < nRacks; ++r) {
            const double powerW = rackPower_[r];
            // A rack cannot offset more than its own draw.
            const Watts want = std::min(planScratch_.power[r], powerW);
            Watts shaved = 0.0;
            if (traits_.peakShaving && want > 0.0)
                shaved = rackDischarge(r, want, dtSec, powerW);
            else
                unitRest(r, dtSec);
            double draw = powerW - shaved;
            // Protect the rack's own wire: extra local discharge if
            // the draw still exceeds the hard circuit rating.
            if (draw > hardLimit) {
                const Watts extra = rackDischarge(r, draw - hardLimit,
                                                  dtSec, powerW);
                draw -= extra;
                shaved += extra;
            }
            rackDraw_[r] = draw;
            rackShaved_[r] = shaved;
        }
    } else {
        for (std::size_t r = 0; r < nRacks; ++r) {
            const double powerW = rackPower_[r];
            Watts shaved = 0.0;
            if (!traits_.peakShaving) {
                unitRest(r, dtSec);
            } else {
                const Watts excess = std::max(0.0, powerW - budget);
                if (excess > 0.0)
                    shaved = rackDischarge(r, excess, dtSec, powerW);
                else
                    unitRest(r, dtSec);
            }
            rackDraw_[r] = powerW - shaved;
            rackShaved_[r] = shaved;
        }
    }

    step.totalDraw =
        std::accumulate(rackDraw_.begin(), rackDraw_.end(), 0.0);
}

void
SoaEngine::fillRackLimits()
{
    const Watts budget = config_.rackBudget();
    const Watts hardLimit = budget * config_.rackBreakerMargin;
    const auto nRacks = static_cast<std::size_t>(racks_);

    if (!traits_.vdebSharing) {
        std::fill(limits_.begin(), limits_.end(),
                  config_.rackOverloadLimit());
        return;
    }

    // Capacity sharing: the iPDU may raise a rack's soft limit by the
    // headroom the *other* racks actually leave on the PDU, never
    // beyond the rack's hard circuit rating.
    Watts totalHeadroom = 0.0;
    for (std::size_t r = 0; r < nRacks; ++r)
        totalHeadroom += std::max(0.0, budget - rackDraw_[r]);
    for (std::size_t r = 0; r < nRacks; ++r) {
        const Watts own = std::max(0.0, budget - rackDraw_[r]);
        const Watts shared = totalHeadroom - own;
        const Watts allocation = std::min(hardLimit, budget + shared);
        limits_[r] = allocation * (1.0 + config_.overshootTolerance);
    }
}

void
SoaEngine::applyUdeb(StepView &step, double dtSec)
{
    // µDEB automatic ORing response; engages only against hidden
    // spikes (or pool shortfall under sharing). See core/datacenter.cc.
    if (!traits_.udebSpikes)
        return;
    const Watts budget = config_.rackBudget();
    const bool poolShortfall =
        step.totalDraw > config_.clusterBudget() + 1e-6;
    for (std::size_t r = 0; r < static_cast<std::size_t>(racks_); ++r) {
        Watts residual = 0.0;
        if (traits_.vdebSharing) {
            if (poolShortfall)
                residual = std::max(0.0, rackDraw_[r] - budget);
        } else {
            residual =
                std::max(0.0, rackDraw_[r] - limits_[r] * 0.999);
        }
        // A zero-residual step disengages the ORing and resets its
        // engagement-duration guard.
        const Watts shaved = udebShave(r, residual, dtSec);
        if (shaved > 0.0) {
            rackDraw_[r] -= shaved;
            step.totalDraw -= shaved;
        }
    }
}

void
SoaEngine::rechargeAll(const StepView &step, double dtSec)
{
    (void)step;
    const Watts budget = config_.rackBudget();
    for (std::size_t r = 0; r < static_cast<std::size_t>(racks_); ++r) {
        Watts headroom = std::max(0.0, budget - rackDraw_[r]);
        // µDEB refills first: tiny energy, highest urgency. Called
        // even with zero headroom so an idle step resets the ORing
        // engagement guard.
        if (hasUdeb_ && rackDraw_[r] <= budget)
            headroom -= udebRecharge(r, headroom, dtSec);
        if (headroom <= 0.0)
            continue;
        // A unit that discharged this step cannot also charge.
        if (rackShaved_[r] > 0.0)
            continue;
        rackRecharge(r, headroom, dtSec);
    }
}

void
SoaEngine::controlDecisions(const StepView &step, double dtSec)
{
    const Watts budget = config_.rackBudget();
    const auto nRacks = static_cast<std::size_t>(racks_);

    // Visible-peak detection: EMA of each rack's power vs its budget.
    const double alpha =
        1.0 - std::exp(-dtSec / ticksToSeconds(config_.vpWindow));
    bool vp = false;
    for (std::size_t r = 0; r < nRacks; ++r) {
        vpEnergy_[r] += alpha * (rackPower_[r] - vpEnergy_[r]);
        if (vpEnergy_[r] > budget)
            vp = true;
    }
    if (vp != visiblePeak_ && obs::traceEnabled())
        obs::emit("detector", "detector.visible_peak",
                  {obs::TraceField::boolean("active", vp),
                   obs::TraceField::num("budget_w", budget)});
    visiblePeak_ = vp;

    // DVFS capping (PSPC): cap a rack once its DEB's remaining
    // runtime at the present excess falls under a safety window.
    if (traits_.dvfsCapping) {
        constexpr double kRuntimeWindowSec = 300.0;
        for (std::size_t r = 0; r < nRacks; ++r) {
            const Watts excess = rackUncapped_[r] - budget;
            const Joules floor = config_.deb.lvdDisconnectSoc * capJ_;
            const Joules usable =
                std::max(0.0, rackStored(r) - floor);
            const bool needCap =
                excess > 0.0 && usable < excess * kRuntimeWindowSec;
            const double next = needCap ? traits_.dvfsFactor : 1.0;
            if (dvfs_[r] != next) {
                dvfs_[r] = next;
                benignDirty_ = true;
            }
        }
    }

    // Detector-triggered cluster-wide capping.
    if (config_.detectorResponse) {
        if (now_ < clusterCapUntil_) {
            for (std::size_t r = 0; r < nRacks; ++r)
                if (dvfs_[r] != traits_.dvfsFactor) {
                    dvfs_[r] = traits_.dvfsFactor;
                    benignDirty_ = true;
                }
        } else if (!traits_.dvfsCapping) {
            for (std::size_t r = 0; r < nRacks; ++r)
                if (dvfs_[r] != 1.0) {
                    dvfs_[r] = 1.0;
                    benignDirty_ = true;
                }
        }
    }

    // Hierarchical policy + Level-3 shedding (PAD).
    if (traits_.shedding) {
        Watts poolPower = 0.0;
        for (std::size_t r = 0; r < nRacks; ++r)
            poolPower += unitAvailablePower(r, 1.0);
        bool udebOk = !traits_.udebSpikes;
        if (hasUdeb_)
            for (std::size_t r = 0; r < nRacks; ++r)
                if (!udebDepleted(r))
                    udebOk = true;

        core::PolicyInputs in;
        in.vdebAvailable = poolPower > 0.01 * config_.clusterBudget();
        in.udebAvailable = udebOk;
        in.visiblePeak = visiblePeak_;
        level_ = policy_.update(in);
        if (level_ != core::SecurityLevel::Normal &&
            firstEscalationTick_ == kTickNever)
            firstEscalationTick_ = now_;

        // Usable fraction of the pool's charge (above LVD floors).
        Joules usable = 0.0, usableCap = 0.0;
        for (std::size_t r = 0; r < nRacks; ++r) {
            const Joules floor = config_.deb.lvdDisconnectSoc * capJ_;
            usable += std::max(0.0, rackStored(r) - floor);
            usableCap += capJ_ - floor;
        }
        const double poolUsable = usable / std::max(usableCap, 1.0);

        const Watts deficit =
            step.totalPower - config_.clusterBudget();
        const bool extreme =
            level_ == core::SecurityLevel::Emergency ||
            (visiblePeak_ &&
             (poolUsable < 0.5 || sheddedServers() > 0));
        if (extreme && deficit > config_.shedTriggerFraction *
                                     config_.clusterBudget()) {
            std::vector<sched::ShedCandidate> candidates;
            for (int r = 0; r < racks_; ++r) {
                for (int s = 0; s < serversPerRack_; ++s) {
                    const auto idx = static_cast<std::size_t>(
                        r * serversPerRack_ + s);
                    if (shed_[idx])
                        continue;
                    const double perServer =
                        rackPower_[static_cast<std::size_t>(r)] /
                        config_.serversPerRack;
                    candidates.push_back(sched::ShedCandidate{
                        static_cast<int>(idx),
                        perServer - config_.sleepPower,
                        shedPriority(idx)});
                }
            }
            const auto decision =
                shedder_.plan(std::move(candidates), deficit);
            for (int id : decision.serversToSleep)
                shed_[static_cast<std::size_t>(id)] = 1;
            if (!decision.serversToSleep.empty())
                benignDirty_ = true;
        } else if (step.totalPower + step.shedSuppressed <=
                   config_.clusterBudget() * 0.98) {
            // The un-shed demand would fit again: wake everything.
            if (std::find(shed_.begin(), shed_.end(),
                          std::uint8_t{1}) != shed_.end()) {
                std::fill(shed_.begin(), shed_.end(), 0);
                benignDirty_ = true;
            }
        }
    }
}

void
SoaEngine::telemetrySample(const StepView &step)
{
    if (!telemetry_)
        return;
    auto &hub = *telemetry_;
    const Watts budget = config_.rackBudget();
    double score = 0.0;
    for (std::size_t r = 0; r < static_cast<std::size_t>(racks_); ++r) {
        hub.record(powerName_[r], now_, rackPower_[r]);
        hub.record(drawName_[r], now_, rackDraw_[r]);
        hub.record(socName_[r], now_, rackSoc(r));
        hub.record(udebSocName_[r], now_,
                   hasUdeb_ ? udebSoc(r) : 1.0);
        if (budget > 0.0)
            score = std::max(score, vpEnergy_[r] / budget);
    }
    hub.record("pdu.power", now_, step.totalPower);
    hub.record("pdu.draw", now_, step.totalDraw);
    hub.record("policy.level", now_, static_cast<double>(level_));
    hub.record("shed.servers", now_,
               static_cast<double>(sheddedServers()));
    hub.record("detector.score", now_, score);
}

void
SoaEngine::stepCoarse()
{
    obs::setTraceClock(now_);
    if (prof_) {
        prof_->beginStep(/*fine=*/false);
        prof_->observeQueueDepth(queue_.size());
    }
    queue_.runUntil(now_);
    const double dtSec = ticksToSeconds(config_.coarseStep);
    StepView step;
    computeStep(step, now_, dtSec, /*fine=*/false, nullptr, nullptr,
                0.0, false, nullptr);
    {
        const obs::PhaseScope ps(prof_,
                                 obs::EngineProfiler::Phase::KibamBatch);
        applyShaving(step, dtSec);
    }
    {
        const obs::PhaseScope ps(prof_,
                                 obs::EngineProfiler::Phase::Detector);
        detectorStep(config_.coarseStep);
    }
    {
        const obs::PhaseScope ps(prof_,
                                 obs::EngineProfiler::Phase::KibamBatch);
        rechargeAll(step, dtSec);
    }
    {
        const obs::PhaseScope ps(prof_,
                                 obs::EngineProfiler::Phase::Detector);
        controlDecisions(step, dtSec);
    }
    {
        const obs::PhaseScope ps(
            prof_, obs::EngineProfiler::Phase::TelemetryFlush);
        telemetrySample(step);
    }
    if (prof_ && obs::traceEnabled())
        prof_->emitTraceCounters();

    if (recordHistory_) {
        socHistory_.push_back(allSocs());
        shedHistory_.push_back(
            static_cast<double>(sheddedServers()) /
            static_cast<double>(config_.totalServers()));
    }
    now_ += config_.coarseStep;
}

void
SoaEngine::runCoarseUntil(Tick until)
{
    while (now_ < until)
        stepCoarse();
}

core::AttackOutcome
SoaEngine::runAttack(attack::TwoPhaseAttacker &attacker,
                     const core::AttackScenario &scenario)
{
    core::AttackScenario sc = scenario;
    switch (sc.targetPolicy) {
      case core::TargetPolicy::Fixed:
        break;
      case core::TargetPolicy::MostVulnerable:
        sc.targetRack = mostVulnerableRack();
        break;
      case core::TargetPolicy::Median:
        sc.targetRack = medianSocRack();
        break;
    }
    PAD_ASSERT(sc.targetRack >= 0 && sc.targetRack < racks_);
    sc.maliciousNodes = attacker.config().controlledNodes;
    PAD_ASSERT(sc.maliciousNodes >= 1 &&
                   sc.maliciousNodes <= serversPerRack_,
               "attacker controls more nodes than one rack holds");

    core::AttackOutcome out;
    const Tick start = now_;
    const Tick horizon = start + secondsToTicks(sc.durationSec);
    out.rack.setAttackStart(start);
    out.cluster.setAttackStart(start);

    sched::PerfMonitor windowPerf;
    const auto target = static_cast<std::size_t>(sc.targetRack);
    const Watts clusterLimit =
        config_.clusterBudget() *
        (1.0 + (traits_.vdebSharing
                    ? config_.clusterOvershootTolerance
                    : config_.overshootTolerance));

    std::fill(victimMask_.begin(), victimMask_.end(), 0);
    victimMask_[target] = 1;
    for (int r : sc.extraVictimRacks) {
        PAD_ASSERT(r >= 0 && r < racks_);
        victimMask_[static_cast<std::size_t>(r)] = 1;
    }
    rebuildBenign(/*attackMode=*/true, sc.maliciousNodes);

    Tick nextControl = start;
    double malDemandAccum = 0.0;
    double malExecAccum = 0.0;
    std::size_t rackOnsetsSeen = 0;
    std::size_t clusterOnsetsSeen = 0;
    const double dtSec = ticksToSeconds(config_.fineStep);

    while (now_ < horizon) {
        obs::setTraceClock(now_);
        if (prof_) {
            prof_->beginStep(/*fine=*/true);
            prof_->observeQueueDepth(queue_.size());
        }
        queue_.runUntil(now_);
        const double relSec = ticksToSeconds(now_ - start);
        const bool active =
            sc.dutyCycle >= 1.0 ||
            std::fmod(relSec, sc.dutyPeriodSec) <
                sc.dutyCycle * sc.dutyPeriodSec;

        if (now_ >= nextControl) {
            attacker.advance(relSec);
            if (malDemandAccum > 0.0) {
                attacker.observePerformance(
                    relSec, malExecAccum / malDemandAccum,
                    ticksToSeconds(config_.controlPeriod));
                malDemandAccum = 0.0;
                malExecAccum = 0.0;
            }
            nextControl += config_.controlPeriod;
        }

        StepView step;
        computeStep(step, now_, dtSec, /*fine=*/true, &attacker, &sc,
                    relSec, active, &windowPerf);

        // The attacker's performance side channel on its own nodes:
        // demanded vs executed under the target rack's DVFS factor.
        {
            const std::size_t rackBase =
                target * static_cast<std::size_t>(serversPerRack_);
            for (int s = 0; s < sc.maliciousNodes; ++s) {
                const std::size_t idx =
                    rackBase + static_cast<std::size_t>(s);
                double demand = demandValues_[idx];
                if (active)
                    demand = std::max(
                        demand, attacker.demandedUtil(s, relSec));
                const double exec =
                    shed_[idx] ? 0.0
                               : serverModel_.executed(demand,
                                                       dvfs_[target]);
                malDemandAccum += demand * dtSec;
                malExecAccum += exec * dtSec;
            }
        }

        {
            const obs::PhaseScope ps(
                prof_, obs::EngineProfiler::Phase::KibamBatch);
            applyShaving(step, dtSec);
        }
        {
            const obs::PhaseScope ps(
                prof_, obs::EngineProfiler::Phase::UdebShave);
            fillRackLimits();
            applyUdeb(step, dtSec);
        }
        {
            const obs::PhaseScope ps(
                prof_, obs::EngineProfiler::Phase::Detector);
            detectorStep(config_.fineStep);
        }

        // Overload accounting and breaker thermodynamics. A tripped
        // rack goes dark for the recovery period, losing its work.
        bool anyTrip = false;
        for (std::size_t r = 0; r < static_cast<std::size_t>(racks_);
             ++r) {
            if (now_ < downUntil_[r])
                continue;
            if (breakerObserve(r, rackDraw_[r], dtSec)) {
                anyTrip = true;
                downUntil_[r] =
                    now_ + secondsToTicks(config_.outageRecoverySec);
                breakerHeat_[r] = 0.0; // breaker reset after the trip
                ++darkRacks_;
                queue_.schedule(downUntil_[r],
                                [this] { --darkRacks_; });
                if (obs::traceEnabled())
                    obs::emit("datacenter", "rack.down",
                              {obs::TraceField::integer(
                                   "rack",
                                   static_cast<std::int64_t>(r)),
                               obs::TraceField::num(
                                   "recovery_sec",
                                   config_.outageRecoverySec)});
            }
        }
        // The attack succeeds at the worst victim rack: the highest
        // draw/limit ratio across the racks under attack.
        double worst = 0.0;
        for (std::size_t r = 0; r < static_cast<std::size_t>(racks_);
             ++r) {
            if (!victimMask_[r])
                continue;
            worst = std::max(worst, rackDraw_[r] / limits_[r]);
        }
        out.rack.observe(now_, worst, 1.0, anyTrip);
        out.cluster.observe(now_, step.totalDraw, clusterLimit, false);

        if (obs::traceEnabled()) {
            for (; rackOnsetsSeen < out.rack.overloadOnsets().size();
                 ++rackOnsetsSeen)
                obs::emit(
                    "datacenter", "attack.overload",
                    {obs::TraceField::str("scope", "rack"),
                     obs::TraceField::integer(
                         "onset",
                         static_cast<std::int64_t>(rackOnsetsSeen))});
            for (; clusterOnsetsSeen <
                   out.cluster.overloadOnsets().size();
                 ++clusterOnsetsSeen)
                obs::emit("datacenter", "attack.overload",
                          {obs::TraceField::str("scope", "cluster"),
                           obs::TraceField::integer(
                               "onset", static_cast<std::int64_t>(
                                            clusterOnsetsSeen))});
        }

        {
            const obs::PhaseScope ps(
                prof_, obs::EngineProfiler::Phase::KibamBatch);
            rechargeAll(step, dtSec);
        }

        if (now_ + config_.fineStep >= nextControl) {
            {
                const obs::PhaseScope ps(
                    prof_, obs::EngineProfiler::Phase::Detector);
                controlDecisions(step, dtSec);
            }
            out.rackPower.record(now_, rackPower_[target]);
            out.rackDraw.record(now_, rackDraw_[target]);
            out.rackSoc.record(now_, rackSoc(target));
            out.udebSoc.record(now_,
                               hasUdeb_ ? udebSoc(target) : 1.0);
            out.level.record(now_, static_cast<double>(level_));
            out.maxShedRatio = std::max(
                out.maxShedRatio,
                static_cast<double>(sheddedServers()) /
                    static_cast<double>(config_.totalServers()));
            {
                const obs::PhaseScope ps(
                    prof_, obs::EngineProfiler::Phase::TelemetryFlush);
                telemetrySample(step);
            }
            if (prof_ && obs::traceEnabled())
                prof_->emitTraceCounters();
            // DEB depletion curves for the racks under attack.
            if (obs::traceEnabled()) {
                for (std::size_t r = 0;
                     r < static_cast<std::size_t>(racks_); ++r) {
                    if (!victimMask_[r])
                        continue;
                    obs::emit(
                        "telemetry", "soc.sample",
                        {obs::TraceField::integer(
                             "rack", static_cast<std::int64_t>(r)),
                         obs::TraceField::num("soc", rackSoc(r)),
                         obs::TraceField::num(
                             "udeb_soc",
                             hasUdeb_ ? udebSoc(r) : 1.0),
                         obs::TraceField::num("power_w",
                                              rackPower_[r]),
                         obs::TraceField::num("draw_w", rackDraw_[r]),
                         obs::TraceField::integer(
                             "level",
                             static_cast<std::int64_t>(level_))});
                }
            }
        }

        now_ += config_.fineStep;
    }

    // The attack window is over: victim racks fold back into the
    // benign cache.
    std::fill(victimMask_.begin(), victimMask_.end(), 0);
    rebuildBenign(/*attackMode=*/false, 0);

    // Survival: first overload at either scope.
    Tick firstBad = kTickNever;
    for (Tick t : {out.rack.firstOverloadTick(),
                   out.cluster.firstOverloadTick()}) {
        if (t != kTickNever && (firstBad == kTickNever || t < firstBad))
            firstBad = t;
    }
    out.survivalSec = firstBad == kTickNever
                          ? sc.durationSec
                          : ticksToSeconds(firstBad - start);
    out.throughput = windowPerf.normalizedThroughput();
    out.phaseTwoStartSec = attacker.phaseTwoStartSec();

    // Enumerate the Phase-II spikes actually launched in-window.
    if (attacker.phaseTwoStartSec() >= 0.0) {
        const auto &virus = attacker.virus();
        const double p2 = attacker.phaseTwoStartSec();
        for (int i = 0;; ++i) {
            const double s = p2 + virus.spikeStart(i);
            const double e = s + virus.train().widthSec;
            if (e > sc.durationSec)
                break;
            const bool activeAtSpike =
                sc.dutyCycle >= 1.0 ||
                std::fmod(s, sc.dutyPeriodSec) <
                    sc.dutyCycle * sc.dutyPeriodSec;
            if (!activeAtSpike)
                continue;
            out.spikeWindows.emplace_back(start + secondsToTicks(s),
                                          start + secondsToTicks(e));
        }
        out.spikesLaunched =
            static_cast<int>(out.spikeWindows.size());
    }

    if (obs::traceEnabled()) {
        obs::setTraceClock(now_);
        if (out.phaseTwoStartSec >= 0.0)
            obs::emitAt(
                start + secondsToTicks(out.phaseTwoStartSec),
                "attacker", "attack.phase2",
                {obs::TraceField::num("start_sec",
                                      out.phaseTwoStartSec)});
        for (const auto &[s, e] : out.spikeWindows)
            obs::emitSpan(s, e, "attacker", "attack.spike", {});
        obs::emitSpan(
            start, now_, "datacenter", "attack.window",
            {obs::TraceField::num("survival_sec", out.survivalSec),
             obs::TraceField::num("throughput", out.throughput),
             obs::TraceField::integer(
                 "spikes",
                 static_cast<std::int64_t>(out.spikesLaunched))});
    }
    return out;
}

// ---------------------------------------------------------------------
// State accessors + stats
// ---------------------------------------------------------------------

double
SoaEngine::rackSoc(std::size_t r) const
{
    return rackStored(r) / std::max(capJ_, 1e-9);
}

std::vector<double>
SoaEngine::allSocs() const
{
    std::vector<double> socs;
    socs.reserve(static_cast<std::size_t>(racks_));
    for (std::size_t r = 0; r < static_cast<std::size_t>(racks_); ++r)
        socs.push_back(rackSoc(r));
    return socs;
}

double
SoaEngine::socStdDevPercent() const
{
    const auto socs = allSocs();
    double mean = 0.0;
    for (double s : socs)
        mean += s;
    mean /= static_cast<double>(socs.size());
    double var = 0.0;
    for (double s : socs)
        var += (s - mean) * (s - mean);
    var /= static_cast<double>(socs.size());
    return std::sqrt(var) * 100.0;
}

int
SoaEngine::medianSocRack() const
{
    std::vector<std::pair<Joules, int>> byEnergy;
    byEnergy.reserve(static_cast<std::size_t>(racks_));
    for (std::size_t r = 0; r < static_cast<std::size_t>(racks_); ++r)
        byEnergy.emplace_back(rackStored(r), static_cast<int>(r));
    std::sort(byEnergy.begin(), byEnergy.end());
    return byEnergy[byEnergy.size() / 2].second;
}

int
SoaEngine::mostVulnerableRack() const
{
    int best = 0;
    Joules lowest = rackStored(0);
    for (std::size_t r = 1; r < static_cast<std::size_t>(racks_); ++r) {
        if (rackStored(r) < lowest) {
            lowest = rackStored(r);
            best = static_cast<int>(r);
        }
    }
    return best;
}

void
SoaEngine::setAllSoc(double soc)
{
    PAD_ASSERT(soc >= 0.0 && soc <= 1.0);
    for (std::size_t r = 0; r < static_cast<std::size_t>(racks_); ++r) {
        y1_[r] = soc * kibamC_ * capJ_;
        y2_[r] = soc * (1.0 - kibamC_) * capJ_;
        lvdTripped_[r] = 0;
        updateLvd(r);
        if (hasUdeb_) {
            const auto &cap = config_.udeb.cap;
            const double udeb = soc > 0.0 ? 1.0 : 0.0;
            const double vmin2 = cap.vMin * cap.vMin;
            const double vmax2 = cap.vMax * cap.vMax;
            udebVoltage_[r] = std::sqrt(vmin2 + udeb * (vmax2 - vmin2));
            udebEngagedFor_[r] = 0.0;
        }
    }
    benignDirty_ = true; // LVD state feeds no demand, but stay safe
}

int
SoaEngine::sheddedServers() const
{
    return static_cast<int>(
        std::count(shed_.begin(), shed_.end(), std::uint8_t{1}));
}

void
SoaEngine::exportStats(sim::StatsRegistry &stats) const
{
    auto scalar = [&](const std::string &name, double value,
                      const std::string &desc) {
        stats.registerScalar(name, desc).set(value);
    };

    scalar("sim.seconds", ticksToSeconds(now_),
           "simulated time so far");
    scalar("scheme", static_cast<double>(config_.scheme),
           "SchemeKind under evaluation");
    scalar("perf.demanded_work", perf_.demandedWork(),
           "benign utilization-seconds demanded");
    scalar("perf.executed_work", perf_.executedWork(),
           "benign utilization-seconds executed");
    scalar("perf.throughput", perf_.normalizedThroughput(),
           "executed / demanded");
    scalar("policy.transitions",
           static_cast<double>(policy_.transitions()),
           "security-level changes");
    scalar("policy.emergencies",
           static_cast<double>(policy_.emergencies()),
           "entries into Level 3");
    scalar("shed.total", static_cast<double>(shedder_.totalShed()),
           "lifetime server-shed decisions");
    scalar("shed.active", static_cast<double>(sheddedServers()),
           "servers asleep right now");
    scalar("detector.flags", static_cast<double>(detections_),
           "anomalies flagged by the detector response");
    scalar("detector.first_flag_sec",
           firstDetectionTick_ == kTickNever
               ? -1.0
               : ticksToSeconds(firstDetectionTick_),
           "sim time of the first detector anomaly (-1 = none)");
    scalar("policy.first_escalation_sec",
           firstEscalationTick_ == kTickNever
               ? -1.0
               : ticksToSeconds(firstEscalationTick_),
           "sim time the policy first left L1 (-1 = never)");

    std::vector<double> socs, wear;
    double discharged = 0.0, charged = 0.0;
    int lvdTrips = 0, breakerTrips = 0, udebEngagements = 0;
    for (std::size_t r = 0; r < static_cast<std::size_t>(racks_); ++r) {
        socs.push_back(rackSoc(r));
        discharged += dischargedJ_[r];
        charged += chargedJ_[r];
        lvdTrips += lvdTrips_[r];
        wear.push_back(cycleWear_[r] + calendarWear_[r]);
        breakerTrips += breakerTrips_[r];
        if (hasUdeb_)
            udebEngagements += udebEngagements_[r];
    }
    scalar("deb.discharged_wh", joulesToWattHours(discharged),
           "fleet energy discharged");
    scalar("deb.charged_wh", joulesToWattHours(charged),
           "fleet energy recharged");
    scalar("deb.lvd_trips", lvdTrips, "low-voltage disconnects");
    scalar("breaker.trips", breakerTrips, "rack breaker trips");
    scalar("udeb.engagements", udebEngagements,
           "micro-DEB spike engagements");
    stats.setVector("deb.soc", "state of charge per rack",
                    std::move(socs));
    stats.setVector("deb.wear", "worst unit wear per rack",
                    std::move(wear));
}

void
SoaEngine::dumpStats(std::ostream &os) const
{
    sim::StatsRegistry stats;
    exportStats(stats);
    stats.dump(os);
}

} // namespace pad::engine
