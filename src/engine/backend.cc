#include "engine/backend.h"

#include "engine/scalar_engine.h"
#include "engine/soa_engine.h"
#include "util/logging.h"

namespace pad::engine {

const char *
backendName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::Baseline:
        return "baseline";
      case BackendKind::Optimized:
        return "optimized";
      case BackendKind::Soa:
        return "soa";
    }
    PAD_FATAL("unknown backend kind {}", static_cast<int>(kind));
}

std::optional<BackendKind>
backendFromName(std::string_view name)
{
    if (name == "baseline")
        return BackendKind::Baseline;
    if (name == "optimized")
        return BackendKind::Optimized;
    if (name == "soa")
        return BackendKind::Soa;
    return std::nullopt;
}

const EngineBackend &
backendFor(BackendKind kind)
{
    static const ScalarBackend baseline(BackendKind::Baseline);
    static const ScalarBackend optimized(BackendKind::Optimized);
    static const SoaBackend soa;
    switch (kind) {
      case BackendKind::Baseline:
        return baseline;
      case BackendKind::Optimized:
        return optimized;
      case BackendKind::Soa:
        return soa;
    }
    PAD_FATAL("unknown backend kind {}", static_cast<int>(kind));
}

std::unique_ptr<ClusterEngine>
makeClusterEngine(BackendKind kind, const core::DataCenterConfig &config,
                  const trace::Workload *workload)
{
    const EngineBackend &backend = backendFor(kind);
    const EnginePlan plan = backend.prepare(config);
    if (!plan.supported) {
        pad::warn("{} backend cannot run this configuration ({}); "
                  "falling back to the scalar optimized engine",
                  backendName(kind), plan.note);
        return backendFor(BackendKind::Optimized)
            .create(config, workload);
    }
    return backend.create(config, workload);
}

} // namespace pad::engine
