/**
 * @file
 * Machine-readable run manifests.
 *
 * A manifest records everything needed to reproduce and diff a run:
 * the tool and experiment name, the build version, the seed, the
 * effective configuration (in application order), pointers to any
 * trace / stats artifacts the run produced, and optionally the stats
 * summary itself. The stats payload arrives as a pre-rendered JSON
 * string so this layer stays independent of the sim library (pad_obs
 * depends only on pad_util).
 */

#ifndef PAD_OBS_MANIFEST_H
#define PAD_OBS_MANIFEST_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace pad::obs {

/** Everything a manifest.json captures about one run. */
struct RunManifest {
    /** Emitting binary, e.g. "padsim" or "fig06". */
    std::string tool;
    /** Experiment / scheme label, e.g. "PAD" or "cluster_attack". */
    std::string experiment;
    /** Base RNG seed the run used. */
    std::uint64_t seed = 0;
    /** Effective config key/values, in application order. */
    std::vector<std::pair<std::string, std::string>> config;
    /** Raw command line, argv[0] included; may be empty. */
    std::vector<std::string> argv;
    /** Path of the trace file produced, empty if tracing was off. */
    std::string traceFile;
    /** "jsonl" or "chrome" when traceFile is set. */
    std::string traceFormat;
    /** Path of the stats JSON export, empty if not written. */
    std::string statsJsonFile;
    /** Path of the padd session record, empty if not recorded. */
    std::string sessionFile;
    /** Path of the streamed incidents JSONL, empty if not written. */
    std::string incidentsFile;
    /** Remote-write target (HOST:PORT), empty if push was off. */
    std::string pushTarget;
    /** Remote-write spool directory, empty if the WAL was off. */
    std::string pushSpoolDir;
    /**
     * Inline stats summary as a pre-rendered JSON value (e.g. from
     * StatsRegistry::dumpJson()); spliced verbatim. Empty = omitted.
     */
    std::string statsJson;
    /** Wall-clock duration of the run in seconds; < 0 = unrecorded. */
    double wallSeconds = -1.0;
};

/** Render @p manifest as indented JSON onto @p os. */
void writeManifest(std::ostream &os, const RunManifest &manifest);

/** Write manifest.json at @p path; warns and returns false on I/O error. */
bool writeManifestFile(const std::string &path,
                       const RunManifest &manifest);

} // namespace pad::obs

#endif // PAD_OBS_MANIFEST_H
