/**
 * @file
 * Engine self-profiling: where does simulation time actually go?
 *
 * EngineProfiler is the introspection seam shared by every
 * ClusterEngine backend. It accumulates
 *
 *   - per-phase wall time (demand eval, KiBaM batch step, µDEB shave,
 *     detector, telemetry flush, shard merge) via RAII PhaseScope,
 *   - cache effectiveness counters (DemandCache and malicious-slot
 *     memo hits/misses),
 *   - EventQueue depth high-water, arena/scratch footprint gauges,
 *   - per-shard tick counts for the sharded demand refresh.
 *
 * Cost contract. Engines hold a nullable EngineProfiler pointer and
 * guard every touch with `if (prof_)` — detached, profiling is a
 * pointer test and nothing else, so all outputs stay byte-identical
 * to an unprofiled run. Attached, counters are plain increments and
 * phase timing is *sampled*: coarse steps always time their phases,
 * fine ticks only every samplePeriod()-th tick, keeping the enabled
 * overhead on `single_run` within the perfbench-verified 5% budget.
 * Reported phase seconds are therefore sampled sums; shares between
 * phases are unbiased, and multiplying by samplePeriod() estimates
 * wall totals (padtrace perf does both).
 *
 * Determinism. Lap/step/cache counts are pure functions of the
 * simulation, so they are bit-identical between serial and parallel
 * sweeps. Wall-clock phase seconds are not — unless the clock is
 * replaced via setClock() with a deterministic source, which is how
 * the parallel-vs-serial merge test pins the full stat set.
 *
 * Threading. One profiler instance belongs to one engine run. The
 * only concurrent writers are the demand-refresh shard workers, which
 * touch disjoint shardTicks() slots; the spawning thread joins them
 * before reading, so no atomics are needed.
 */

#ifndef PAD_OBS_PROF_H
#define PAD_OBS_PROF_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace pad::obs {

class EngineProfiler
{
  public:
    /** Engine pipeline phases, in export (vector-index) order. */
    enum class Phase : std::uint8_t {
        DemandEval = 0,     ///< demand cache refresh / workload eval
        KibamBatch = 1,     ///< KiBaM discharge + recharge battery step
        UdebShave = 2,      ///< µDEB peak shaving
        Detector = 3,       ///< anomaly detector + policy decisions
        TelemetryFlush = 4, ///< telemetry hub sampling
        ShardMerge = 5,     ///< sharded refresh fan-out/join
    };
    static constexpr std::size_t kPhaseCount = 6;

    /** Stable lower_snake name for a phase ("demand_eval", ...). */
    static std::string_view phaseName(Phase p);
    static std::string_view phaseName(std::size_t index);

    /** Monotonic clock in seconds; replaceable for determinism. */
    using ClockFn = double (*)();

    /** Default fine-tick sampling period (time every Nth tick). */
    static constexpr int kDefaultSamplePeriod = 8;

    explicit EngineProfiler(int samplePeriod = kDefaultSamplePeriod);

    /** Swap the wall clock (tests); nullptr restores steady_clock. */
    void setClock(ClockFn clock);

    /** Time every Nth fine tick; clamped to >= 1. */
    void setSamplePeriod(int period);
    int samplePeriod() const { return samplePeriod_; }

    /**
     * Engines call this once at the top of every step. Coarse steps
     * always sample their phases; fine ticks sample every Nth.
     */
    void
    beginStep(bool fine)
    {
        ++steps_;
        if (!fine || samplePeriod_ == 1)
            sampling_ = true;
        else
            sampling_ = (fineTicks_++ % samplePeriod_) == 0;
        if (sampling_)
            ++sampledSteps_;
    }

    /** True when the current step's phases are being timed. */
    bool sampling() const { return sampling_; }

    double now() const { return clock_(); }

    void
    addPhase(Phase p, double seconds)
    {
        PhaseTotals &t = phases_[static_cast<std::size_t>(p)];
        t.seconds += seconds;
        ++t.laps;
    }

    // -- cache effectiveness (unconditional, one increment each) ----
    void demandHit() { ++demandHits_; }
    void demandMiss() { ++demandMisses_; }
    void malMemoHit() { ++malMemoHits_; }
    void malMemoMiss() { ++malMemoMisses_; }

    // -- gauges ------------------------------------------------------
    void
    observeQueueDepth(std::size_t depth)
    {
        if (depth > queueDepthHighWater_)
            queueDepthHighWater_ = depth;
    }
    void setArenaBytes(std::size_t bytes) { arenaBytes_ = bytes; }
    void setScratchBytes(std::size_t bytes) { scratchBytes_ = bytes; }

    // -- sharding ----------------------------------------------------
    /** Size the per-shard tick table (existing counts preserved). */
    void setShardCount(std::size_t shards);
    /** One refresh executed by @p shard; disjoint slots per worker. */
    void
    shardTick(std::size_t shard)
    {
        if (shard < shardTicks_.size())
            ++shardTicks_[shard];
    }

    // -- inspection --------------------------------------------------
    struct PhaseTotals {
        double seconds = 0.0;   ///< sampled wall seconds
        std::uint64_t laps = 0; ///< sampled scope count
    };

    const PhaseTotals &phase(Phase p) const
    {
        return phases_[static_cast<std::size_t>(p)];
    }
    const std::array<PhaseTotals, kPhaseCount> &phases() const
    {
        return phases_;
    }
    std::uint64_t demandHits() const { return demandHits_; }
    std::uint64_t demandMisses() const { return demandMisses_; }
    std::uint64_t malMemoHits() const { return malMemoHits_; }
    std::uint64_t malMemoMisses() const { return malMemoMisses_; }
    std::uint64_t cacheHits() const { return demandHits_ + malMemoHits_; }
    std::uint64_t cacheMisses() const
    {
        return demandMisses_ + malMemoMisses_;
    }
    std::size_t queueDepthHighWater() const { return queueDepthHighWater_; }
    std::size_t arenaBytes() const { return arenaBytes_; }
    std::size_t scratchBytes() const { return scratchBytes_; }
    const std::vector<std::uint64_t> &shardTicks() const
    {
        return shardTicks_;
    }
    std::uint64_t steps() const { return steps_; }
    std::uint64_t sampledSteps() const { return sampledSteps_; }

    /** Total sampled wall seconds across all phases. */
    double totalPhaseSeconds() const;

    /**
     * Emit cumulative totals as Chrome counter events (phase
     * milliseconds, cache hit/miss counts, queue depth) stamped at
     * the current trace clock. Callers guard with traceEnabled().
     */
    void emitTraceCounters() const;

    /** Forget everything except clock and sample period. */
    void reset();

  private:
    ClockFn clock_;
    int samplePeriod_;
    bool sampling_ = false;
    std::uint64_t fineTicks_ = 0;
    std::uint64_t steps_ = 0;
    std::uint64_t sampledSteps_ = 0;
    std::array<PhaseTotals, kPhaseCount> phases_{};
    std::uint64_t demandHits_ = 0;
    std::uint64_t demandMisses_ = 0;
    std::uint64_t malMemoHits_ = 0;
    std::uint64_t malMemoMisses_ = 0;
    std::size_t queueDepthHighWater_ = 0;
    std::size_t arenaBytes_ = 0;
    std::size_t scratchBytes_ = 0;
    std::vector<std::uint64_t> shardTicks_;
};

/**
 * RAII phase timer. Free when @p prof is null or the current step is
 * not sampled: the constructor collapses to a pointer test and the
 * destructor to a null check, with no clock reads.
 */
class PhaseScope
{
  public:
    PhaseScope(EngineProfiler *prof, EngineProfiler::Phase phase)
        : prof_(prof && prof->sampling() ? prof : nullptr), phase_(phase)
    {
        if (prof_)
            start_ = prof_->now();
    }

    ~PhaseScope()
    {
        if (prof_)
            prof_->addPhase(phase_, prof_->now() - start_);
    }

    PhaseScope(const PhaseScope &) = delete;
    PhaseScope &operator=(const PhaseScope &) = delete;

  private:
    EngineProfiler *prof_;
    EngineProfiler::Phase phase_;
    double start_ = 0.0;
};

} // namespace pad::obs

#endif // PAD_OBS_PROF_H
