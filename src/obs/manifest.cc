#include "obs/manifest.h"

#include <fstream>
#include <ostream>

#include "obs/version.h"
#include "util/json_writer.h"
#include "util/logging.h"

namespace pad::obs {

void
writeManifest(std::ostream &os, const RunManifest &manifest)
{
    JsonWriter w(os, 2);
    w.beginObject();
    w.key("tool").value(manifest.tool);
    if (!manifest.experiment.empty())
        w.key("experiment").value(manifest.experiment);
    w.key("version").value(versionString());
    w.key("seed").value(static_cast<std::uint64_t>(manifest.seed));

    w.key("config").beginObject();
    for (const auto &[key, value] : manifest.config)
        w.key(key).value(value);
    w.endObject();

    if (!manifest.argv.empty()) {
        w.key("argv").beginArray();
        for (const std::string &arg : manifest.argv)
            w.value(arg);
        w.endArray();
    }

    w.key("artifacts").beginObject();
    if (!manifest.traceFile.empty()) {
        w.key("trace").value(manifest.traceFile);
        w.key("trace_format").value(manifest.traceFormat);
    }
    if (!manifest.statsJsonFile.empty())
        w.key("stats_json").value(manifest.statsJsonFile);
    if (!manifest.sessionFile.empty())
        w.key("session").value(manifest.sessionFile);
    if (!manifest.incidentsFile.empty())
        w.key("incidents").value(manifest.incidentsFile);
    if (!manifest.pushTarget.empty()) {
        w.key("push_target").value(manifest.pushTarget);
        if (!manifest.pushSpoolDir.empty())
            w.key("push_spool").value(manifest.pushSpoolDir);
    }
    w.endObject();

    if (!manifest.statsJson.empty())
        w.key("stats").rawValue(manifest.statsJson);
    if (manifest.wallSeconds >= 0.0)
        w.key("wall_seconds").value(manifest.wallSeconds);
    w.endObject();
    os << '\n';
}

bool
writeManifestFile(const std::string &path, const RunManifest &manifest)
{
    std::ofstream file(path);
    if (!file) {
        warn("cannot open manifest file '{}'", path);
        return false;
    }
    writeManifest(file, manifest);
    return static_cast<bool>(file);
}

} // namespace pad::obs
