/**
 * @file
 * Typed trace events.
 *
 * A TraceEvent is a point-in-time observation ("detector fired",
 * "policy moved L1->L2") or a completed span ("simulator ran ticks
 * [a,b)") with a small set of typed payload fields. Events reference
 * caller-owned strings by view — sinks serialize synchronously inside
 * write(), so no copies are taken and emitting with a null sink costs
 * nothing beyond the enabled check.
 */

#ifndef PAD_OBS_TRACE_EVENT_H
#define PAD_OBS_TRACE_EVENT_H

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "util/types.h"

namespace pad::obs {

/** One key/value payload entry attached to a trace event. */
class TraceField
{
  public:
    enum class Kind { Int, Double, Bool, Str };

    std::string_view key;
    Kind kind = Kind::Int;
    std::int64_t i = 0;
    double d = 0.0;
    bool b = false;
    std::string_view s;

    static TraceField
    integer(std::string_view key, std::int64_t v)
    {
        TraceField f;
        f.key = key;
        f.kind = Kind::Int;
        f.i = v;
        return f;
    }

    static TraceField
    num(std::string_view key, double v)
    {
        TraceField f;
        f.key = key;
        f.kind = Kind::Double;
        f.d = v;
        return f;
    }

    static TraceField
    boolean(std::string_view key, bool v)
    {
        TraceField f;
        f.key = key;
        f.kind = Kind::Bool;
        f.b = v;
        return f;
    }

    static TraceField
    str(std::string_view key, std::string_view v)
    {
        TraceField f;
        f.key = key;
        f.kind = Kind::Str;
        f.s = v;
        return f;
    }
};

/** A single trace record handed to a TraceSink. */
struct TraceEvent {
    /**
     * Instant: point-in-time observation. Complete: finished span.
     * Counter: sampled numeric series (Chrome "ph":"C"); every field
     * should be numeric — viewers plot them as stacked counter tracks.
     */
    enum class Phase { Instant, Complete, Counter };

    Phase phase = Phase::Instant;
    /** Sim time of the event (span start for Complete). */
    Tick when = 0;
    /** Span length in ticks; 0 for instants. */
    Tick duration = 0;
    /** Sweep job index the event belongs to; -1 = main thread. */
    int job = -1;
    /** Emitting component, e.g. "policy" or "rack3.udeb". */
    std::string_view component;
    /** Event type, e.g. "policy.transition". */
    std::string_view name;
    const TraceField *fields = nullptr;
    std::size_t numFields = 0;
};

} // namespace pad::obs

#endif // PAD_OBS_TRACE_EVENT_H
