#include "obs/prof.h"

#include <chrono>

#include "obs/tracer.h"
#include "util/logging.h"

namespace pad::obs {

namespace {

double
steadySeconds()
{
    using namespace std::chrono;
    return duration<double>(steady_clock::now().time_since_epoch())
        .count();
}

constexpr std::string_view kPhaseNames[EngineProfiler::kPhaseCount] = {
    "demand_eval",     "kibam_batch", "udeb_shave",
    "detector",        "telemetry_flush", "shard_merge",
};

} // namespace

std::string_view
EngineProfiler::phaseName(Phase p)
{
    return phaseName(static_cast<std::size_t>(p));
}

std::string_view
EngineProfiler::phaseName(std::size_t index)
{
    PAD_ASSERT(index < kPhaseCount, "phase index out of range");
    return kPhaseNames[index];
}

EngineProfiler::EngineProfiler(int samplePeriod)
    : clock_(&steadySeconds),
      samplePeriod_(samplePeriod < 1 ? 1 : samplePeriod)
{
}

void
EngineProfiler::setClock(ClockFn clock)
{
    clock_ = clock ? clock : &steadySeconds;
}

void
EngineProfiler::setSamplePeriod(int period)
{
    samplePeriod_ = period < 1 ? 1 : period;
}

void
EngineProfiler::setShardCount(std::size_t shards)
{
    if (shards > shardTicks_.size())
        shardTicks_.resize(shards, 0);
}

double
EngineProfiler::totalPhaseSeconds() const
{
    double total = 0.0;
    for (const PhaseTotals &t : phases_)
        total += t.seconds;
    return total;
}

void
EngineProfiler::emitTraceCounters() const
{
    // One counter track per concern; Perfetto stacks the fields.
    emitCounter(
        "engine.prof", "engine.phase_ms",
        {TraceField::num(phaseName(0), phases_[0].seconds * 1e3),
         TraceField::num(phaseName(1), phases_[1].seconds * 1e3),
         TraceField::num(phaseName(2), phases_[2].seconds * 1e3),
         TraceField::num(phaseName(3), phases_[3].seconds * 1e3),
         TraceField::num(phaseName(4), phases_[4].seconds * 1e3),
         TraceField::num(phaseName(5), phases_[5].seconds * 1e3)});
    emitCounter(
        "engine.prof", "engine.cache",
        {TraceField::integer("hits",
                             static_cast<std::int64_t>(cacheHits())),
         TraceField::integer("misses",
                             static_cast<std::int64_t>(cacheMisses()))});
    emitCounter("engine.prof", "engine.queue_depth",
                {TraceField::integer(
                    "high_water",
                    static_cast<std::int64_t>(queueDepthHighWater_))});
}

void
EngineProfiler::reset()
{
    sampling_ = false;
    fineTicks_ = 0;
    steps_ = 0;
    sampledSteps_ = 0;
    phases_.fill(PhaseTotals{});
    demandHits_ = 0;
    demandMisses_ = 0;
    malMemoHits_ = 0;
    malMemoMisses_ = 0;
    queueDepthHighWater_ = 0;
    arenaBytes_ = 0;
    scratchBytes_ = 0;
    shardTicks_.assign(shardTicks_.size(), 0);
}

} // namespace pad::obs
