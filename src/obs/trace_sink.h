/**
 * @file
 * Trace sinks: where emitted events go.
 *
 * All concrete sinks serialize their own output behind an internal
 * mutex so SweepRunner workers can share one sink. Events are written
 * synchronously (string_views in TraceEvent only need to outlive the
 * write() call). Event order in the file is arrival order; under a
 * parallel sweep that interleaving is nondeterministic, which is fine
 * because every event carries its own job index and sim timestamp.
 */

#ifndef PAD_OBS_TRACE_SINK_H
#define PAD_OBS_TRACE_SINK_H

#include <atomic>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

#include "obs/trace_event.h"

namespace pad::obs {

/** Abstract destination for trace events. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Record one event. Must be safe to call from many threads. */
    virtual void write(const TraceEvent &event) = 0;

    /** Flush buffered output; called at clean shutdown. */
    virtual void flush() {}
};

/**
 * Discards every event without formatting anything. Useful as an
 * explicit "tracing wired but off" endpoint and for overhead tests.
 */
class NullTraceSink : public TraceSink
{
  public:
    void write(const TraceEvent &) override {}
};

/** Counts events; test helper. */
class CountingTraceSink : public TraceSink
{
  public:
    void
    write(const TraceEvent &) override
    {
        count_.fetch_add(1, std::memory_order_relaxed);
    }

    std::uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> count_{0};
};

/**
 * One JSON object per line:
 *
 *   {"ts":1234,"job":0,"component":"policy",
 *    "name":"policy.transition","args":{"from":1,"to":2}}
 *
 * "ts" (and "dur" for spans) are in sim ticks (milliseconds). Lines
 * are self-contained, so the file is valid even if the run dies
 * mid-way — handy for grep/jq style post-processing.
 */
class JsonlTraceSink : public TraceSink
{
  public:
    /** Stream is borrowed and must outlive the sink. */
    explicit JsonlTraceSink(std::ostream &os);

    void write(const TraceEvent &event) override;
    void flush() override;

  private:
    std::mutex mutex_;
    std::ostream &os_;
};

/**
 * Chrome trace event format ("{"traceEvents":[...]}"), loadable in
 * Perfetto / chrome://tracing. Sim ticks (ms) map to trace
 * microseconds ("ts" = tick * 1000) so the UI's time ruler reads as
 * sim time with ms granularity. Each sweep job becomes a process
 * (pid = job + 1) and each component a named thread within it.
 *
 * The closing "]}" is written by finish() or the destructor; call
 * finish() explicitly when you need the file complete before exit.
 */
class ChromeTraceSink : public TraceSink
{
  public:
    /** Stream is borrowed and must outlive the sink. */
    explicit ChromeTraceSink(std::ostream &os);
    ~ChromeTraceSink() override;

    void write(const TraceEvent &event) override;
    void flush() override;

    /** Write the trailing "]}"; further write() calls are invalid. */
    void finish();

  private:
    int threadId(int pid, std::string_view component);
    void comma();

    std::mutex mutex_;
    std::ostream &os_;
    bool first_ = true;
    bool finished_ = false;
    /** (pid, component) -> tid, metadata already emitted. */
    std::map<std::pair<int, std::string>, int> threads_;
};

/**
 * A sink that owns its output file. Creation fails (returns nullptr
 * and warns) when the file cannot be opened.
 */
class FileTraceSink : public TraceSink
{
  public:
    enum class Format { Jsonl, Chrome };

    static std::unique_ptr<FileTraceSink> open(const std::string &path,
                                               Format format);
    ~FileTraceSink() override;

    void write(const TraceEvent &event) override;
    void flush() override;

    /** Complete the file (Chrome footer) and flush. */
    void close();

  private:
    FileTraceSink(std::ofstream file, Format format);

    std::ofstream file_;
    Format format_;
    std::unique_ptr<TraceSink> inner_;
};

/** Parse "jsonl" / "chrome"; nullopt otherwise. */
std::optional<FileTraceSink::Format>
traceFormatFromName(std::string_view name);

} // namespace pad::obs

#endif // PAD_OBS_TRACE_SINK_H
