#include "obs/tracer.h"

namespace pad::obs {

namespace detail {

thread_local TraceSink *tlsSink = nullptr;
thread_local Tick tlsClock = 0;
thread_local int tlsJob = -1;

} // namespace detail

TraceScope::TraceScope(TraceSink *sink, int job)
    : prevSink_(detail::tlsSink), prevClock_(detail::tlsClock),
      prevJob_(detail::tlsJob)
{
    detail::tlsSink = sink;
    detail::tlsClock = 0;
    detail::tlsJob = job;
}

TraceScope::~TraceScope()
{
    detail::tlsSink = prevSink_;
    detail::tlsClock = prevClock_;
    detail::tlsJob = prevJob_;
}

void
emit(std::string_view component, std::string_view name,
     std::initializer_list<TraceField> fields)
{
    emitAt(detail::tlsClock, component, name, fields);
}

void
emitAt(Tick when, std::string_view component, std::string_view name,
       std::initializer_list<TraceField> fields)
{
    TraceSink *sink = detail::tlsSink;
    if (!sink)
        return;
    TraceEvent event;
    event.phase = TraceEvent::Phase::Instant;
    event.when = when;
    event.job = detail::tlsJob;
    event.component = component;
    event.name = name;
    event.fields = fields.begin();
    event.numFields = fields.size();
    sink->write(event);
}

void
emitCounter(std::string_view component, std::string_view name,
            std::initializer_list<TraceField> fields)
{
    TraceSink *sink = detail::tlsSink;
    if (!sink)
        return;
    TraceEvent event;
    event.phase = TraceEvent::Phase::Counter;
    event.when = detail::tlsClock;
    event.job = detail::tlsJob;
    event.component = component;
    event.name = name;
    event.fields = fields.begin();
    event.numFields = fields.size();
    sink->write(event);
}

void
emitSpan(Tick start, Tick end, std::string_view component,
         std::string_view name, std::initializer_list<TraceField> fields)
{
    TraceSink *sink = detail::tlsSink;
    if (!sink)
        return;
    TraceEvent event;
    event.phase = TraceEvent::Phase::Complete;
    event.when = start;
    event.duration = end >= start ? end - start : 0;
    event.job = detail::tlsJob;
    event.component = component;
    event.name = name;
    event.fields = fields.begin();
    event.numFields = fields.size();
    sink->write(event);
}

} // namespace pad::obs
