/**
 * @file
 * Thread-local tracer binding.
 *
 * Tracing is opt-in per thread: a TraceScope binds a sink (and a
 * sweep-job index) to the current thread, components emit through
 * free functions, and everything keys off one thread-local pointer.
 * The contract that keeps disabled tracing free:
 *
 *   if (obs::traceEnabled())
 *       obs::emit("policy", "policy.transition",
 *                 {obs::TraceField::integer("to", 2)});
 *
 * With no scope bound, traceEnabled() is a thread-local pointer test
 * and nothing — not even the field list — is materialized. Components
 * without their own clock rely on whoever drives them (DataCenter,
 * the experiment loop) calling setTraceClock(now) each step.
 */

#ifndef PAD_OBS_TRACER_H
#define PAD_OBS_TRACER_H

#include <initializer_list>
#include <string_view>

#include "obs/trace_event.h"
#include "obs/trace_sink.h"

namespace pad::obs {

namespace detail {

extern thread_local TraceSink *tlsSink;
extern thread_local Tick tlsClock;
extern thread_local int tlsJob;

} // namespace detail

/** True when a sink is bound to this thread. Guard every emit. */
inline bool
traceEnabled()
{
    return detail::tlsSink != nullptr;
}

/** Advance this thread's notion of sim time for emitted events. */
inline void
setTraceClock(Tick now)
{
    detail::tlsClock = now;
}

/** Current trace clock (sim ticks). */
inline Tick
traceClock()
{
    return detail::tlsClock;
}

/**
 * Sink currently bound to this thread, or nullptr when tracing is
 * disabled. Lets adapters (the alert engine's AlertTraceSink) wrap
 * whatever sink the caller already had and pass events through.
 */
inline TraceSink *
currentTraceSink()
{
    return detail::tlsSink;
}

/** Sweep-job index bound to this thread; -1 on the main thread. */
inline int
currentTraceJob()
{
    return detail::tlsJob;
}

/**
 * Bind @p sink (and sweep-job @p job) to the current thread for the
 * scope's lifetime. Nestable; restores the previous binding. Passing
 * nullptr disables tracing within the scope.
 */
class TraceScope
{
  public:
    explicit TraceScope(TraceSink *sink, int job = -1);
    ~TraceScope();

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    TraceSink *prevSink_;
    Tick prevClock_;
    int prevJob_;
};

/** Emit an instant event at the current trace clock. */
void emit(std::string_view component, std::string_view name,
          std::initializer_list<TraceField> fields = {});

/** Emit an instant event at an explicit sim time. */
void emitAt(Tick when, std::string_view component, std::string_view name,
            std::initializer_list<TraceField> fields = {});

/** Emit a completed span covering sim ticks [start, end]. */
void emitSpan(Tick start, Tick end, std::string_view component,
              std::string_view name,
              std::initializer_list<TraceField> fields = {});

/**
 * Emit a counter sample at the current trace clock. Fields should be
 * numeric; Chrome/Perfetto render them as a stacked counter track
 * named after the event, so periodic samples become a timeline.
 */
void emitCounter(std::string_view component, std::string_view name,
                 std::initializer_list<TraceField> fields);

} // namespace pad::obs

#endif // PAD_OBS_TRACER_H
