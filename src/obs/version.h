/**
 * @file
 * Build version identification for run manifests.
 */

#ifndef PAD_OBS_VERSION_H
#define PAD_OBS_VERSION_H

#include <string_view>

namespace pad::obs {

/**
 * git-describe-style version of the build ("006953c", "v1.2-4-gabc
 * -dirty", ...), captured at configure time; "unknown" when built
 * outside a git checkout.
 */
std::string_view versionString();

} // namespace pad::obs

#endif // PAD_OBS_VERSION_H
