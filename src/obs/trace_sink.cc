#include "obs/trace_sink.h"

#include "util/json_writer.h"
#include "util/logging.h"

namespace pad::obs {

namespace {

void
writeFields(JsonWriter &w, const TraceEvent &event)
{
    for (std::size_t n = 0; n < event.numFields; ++n) {
        const TraceField &f = event.fields[n];
        w.key(f.key);
        switch (f.kind) {
          case TraceField::Kind::Int:
            w.value(f.i);
            break;
          case TraceField::Kind::Double:
            w.value(f.d);
            break;
          case TraceField::Kind::Bool:
            w.value(f.b);
            break;
          case TraceField::Kind::Str:
            w.value(f.s);
            break;
        }
    }
}

} // namespace

JsonlTraceSink::JsonlTraceSink(std::ostream &os) : os_(os)
{
}

void
JsonlTraceSink::write(const TraceEvent &event)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    JsonWriter w(os_);
    w.beginObject();
    w.key("ts").value(static_cast<std::int64_t>(event.when));
    if (event.phase == TraceEvent::Phase::Complete)
        w.key("dur").value(static_cast<std::int64_t>(event.duration));
    if (event.phase == TraceEvent::Phase::Counter)
        w.key("kind").value("counter");
    if (event.job >= 0)
        w.key("job").value(event.job);
    w.key("component").value(event.component);
    w.key("name").value(event.name);
    if (event.numFields > 0) {
        w.key("args").beginObject();
        writeFields(w, event);
        w.endObject();
    }
    w.endObject();
    os_ << '\n';
}

void
JsonlTraceSink::flush()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    os_.flush();
}

ChromeTraceSink::ChromeTraceSink(std::ostream &os) : os_(os)
{
    os_ << "{\"traceEvents\":[";
}

ChromeTraceSink::~ChromeTraceSink()
{
    finish();
}

void
ChromeTraceSink::comma()
{
    if (!first_)
        os_ << ",\n";
    first_ = false;
}

int
ChromeTraceSink::threadId(int pid, std::string_view component)
{
    auto key = std::make_pair(pid, std::string(component));
    const auto it = threads_.find(key);
    if (it != threads_.end())
        return it->second;

    const int tid = static_cast<int>(threads_.size()) + 1;
    threads_.emplace(std::move(key), tid);

    // Name the synthetic thread after the component so the trace
    // viewer's track labels read "policy", "rack3.udeb", ...
    comma();
    JsonWriter w(os_);
    w.beginObject();
    w.key("ph").value("M");
    w.key("name").value("thread_name");
    w.key("pid").value(pid);
    w.key("tid").value(tid);
    w.key("args").beginObject().key("name").value(component).endObject();
    w.endObject();
    return tid;
}

void
ChromeTraceSink::write(const TraceEvent &event)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    PAD_ASSERT(!finished_, "write to a finished ChromeTraceSink");
    const int pid = event.job + 1;
    const int tid = threadId(pid, event.component);
    comma();

    JsonWriter w(os_);
    w.beginObject();
    w.key("name").value(event.name);
    w.key("cat").value(event.component);
    if (event.phase == TraceEvent::Phase::Complete) {
        w.key("ph").value("X");
        // Sim milliseconds -> trace microseconds.
        w.key("ts").value(static_cast<std::int64_t>(event.when) * 1000);
        w.key("dur").value(static_cast<std::int64_t>(event.duration) *
                           1000);
    } else if (event.phase == TraceEvent::Phase::Counter) {
        w.key("ph").value("C");
        w.key("ts").value(static_cast<std::int64_t>(event.when) * 1000);
    } else {
        w.key("ph").value("i");
        w.key("ts").value(static_cast<std::int64_t>(event.when) * 1000);
        w.key("s").value("t");
    }
    w.key("pid").value(pid);
    w.key("tid").value(tid);
    if (event.numFields > 0) {
        w.key("args").beginObject();
        writeFields(w, event);
        w.endObject();
    }
    w.endObject();
}

void
ChromeTraceSink::flush()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    os_.flush();
}

void
ChromeTraceSink::finish()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (finished_)
        return;
    finished_ = true;
    os_ << "]}\n";
    os_.flush();
}

std::optional<FileTraceSink::Format>
traceFormatFromName(std::string_view name)
{
    if (name == "jsonl")
        return FileTraceSink::Format::Jsonl;
    if (name == "chrome")
        return FileTraceSink::Format::Chrome;
    return std::nullopt;
}

std::unique_ptr<FileTraceSink>
FileTraceSink::open(const std::string &path, Format format)
{
    std::ofstream file(path);
    if (!file) {
        warn("cannot open trace file '{}'", path);
        return nullptr;
    }
    return std::unique_ptr<FileTraceSink>(
        new FileTraceSink(std::move(file), format));
}

FileTraceSink::FileTraceSink(std::ofstream file, Format format)
    : file_(std::move(file)), format_(format)
{
    if (format_ == Format::Chrome)
        inner_ = std::make_unique<ChromeTraceSink>(file_);
    else
        inner_ = std::make_unique<JsonlTraceSink>(file_);
}

FileTraceSink::~FileTraceSink()
{
    close();
}

void
FileTraceSink::write(const TraceEvent &event)
{
    inner_->write(event);
}

void
FileTraceSink::flush()
{
    inner_->flush();
}

void
FileTraceSink::close()
{
    if (!inner_)
        return;
    if (format_ == Format::Chrome)
        static_cast<ChromeTraceSink *>(inner_.get())->finish();
    inner_->flush();
    inner_.reset();
    file_.close();
}

} // namespace pad::obs
