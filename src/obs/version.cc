#include "obs/version.h"

// Injected by src/obs/CMakeLists.txt from `git describe`.
#ifndef PAD_GIT_DESCRIBE
#define PAD_GIT_DESCRIBE "unknown"
#endif

namespace pad::obs {

std::string_view
versionString()
{
    return PAD_GIT_DESCRIBE;
}

} // namespace pad::obs
