#include "sched/job_scheduler.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace pad::sched {

std::string
placementPolicyName(PlacementPolicy policy)
{
    switch (policy) {
      case PlacementPolicy::RoundRobin:
        return "round-robin";
      case PlacementPolicy::Random:
        return "random";
      case PlacementPolicy::LeastLoaded:
        return "least-loaded";
      case PlacementPolicy::PowerAware:
        return "power-aware";
    }
    PAD_PANIC("unreachable placement policy");
}

JobScheduler::JobScheduler(int machines, int machinesPerRack,
                           PlacementPolicy policy, std::uint64_t seed)
    : machines_(machines), machinesPerRack_(machinesPerRack),
      policy_(policy), rng_(seed),
      load_(static_cast<std::size_t>(machines), 0.0)
{
    PAD_ASSERT(machines_ > 0);
    PAD_ASSERT(machinesPerRack_ > 0 &&
               machines_ % machinesPerRack_ == 0,
               "machines must fill whole racks");
}

void
JobScheduler::expire(Tick now)
{
    while (!releases_.empty() && releases_.top().when <= now) {
        const Release r = releases_.top();
        releases_.pop();
        load_[static_cast<std::size_t>(r.machine)] =
            std::max(0.0, load_[static_cast<std::size_t>(r.machine)] -
                              r.cpuRate);
    }
}

double
JobScheduler::projectedLoad(int machine) const
{
    PAD_ASSERT(machine >= 0 && machine < machines_);
    return load_[static_cast<std::size_t>(machine)];
}

int
JobScheduler::place(Tick now, double cpuRate)
{
    (void)now;
    switch (policy_) {
      case PlacementPolicy::RoundRobin: {
        const int m = nextRoundRobin_;
        nextRoundRobin_ = (nextRoundRobin_ + 1) % machines_;
        return m;
      }
      case PlacementPolicy::Random:
        return static_cast<int>(rng_.uniformInt(0, machines_ - 1));
      case PlacementPolicy::LeastLoaded: {
        int best = 0;
        for (int m = 1; m < machines_; ++m)
            if (load_[static_cast<std::size_t>(m)] <
                load_[static_cast<std::size_t>(best)])
                best = m;
        return best;
      }
      case PlacementPolicy::PowerAware: {
        // Rack with the lowest projected total load after adding
        // this task, then the least-loaded machine inside it.
        const int racks = machines_ / machinesPerRack_;
        int bestRack = 0;
        double bestRackLoad = std::numeric_limits<double>::max();
        for (int r = 0; r < racks; ++r) {
            double rackLoad = cpuRate;
            for (int s = 0; s < machinesPerRack_; ++s)
                rackLoad += load_[static_cast<std::size_t>(
                    r * machinesPerRack_ + s)];
            if (rackLoad < bestRackLoad) {
                bestRackLoad = rackLoad;
                bestRack = r;
            }
        }
        int best = bestRack * machinesPerRack_;
        for (int s = 1; s < machinesPerRack_; ++s) {
            const int m = bestRack * machinesPerRack_ + s;
            if (load_[static_cast<std::size_t>(m)] <
                load_[static_cast<std::size_t>(best)])
                best = m;
        }
        return best;
      }
    }
    PAD_PANIC("unreachable placement policy");
}

std::vector<trace::TaskEvent>
JobScheduler::schedule(const std::vector<Job> &jobs)
{
    std::vector<const Job *> order;
    order.reserve(jobs.size());
    for (const auto &job : jobs)
        order.push_back(&job);
    std::stable_sort(order.begin(), order.end(),
                     [](const Job *a, const Job *b) {
                         return a->arrival < b->arrival;
                     });

    std::vector<trace::TaskEvent> events;
    for (const Job *job : order) {
        expire(job->arrival);
        for (const auto &task : job->tasks) {
            const int machine = place(job->arrival, task.cpuRate);
            load_[static_cast<std::size_t>(machine)] += task.cpuRate;
            releases_.push(Release{job->arrival + task.duration,
                                   machine, task.cpuRate});
            trace::TaskEvent ev;
            ev.start = job->arrival;
            ev.end = job->arrival + task.duration;
            ev.machine = machine;
            ev.cpuRate = task.cpuRate;
            events.push_back(ev);
        }
    }
    return events;
}

std::vector<Job>
jobsFromEvents(const std::vector<trace::TaskEvent> &events)
{
    std::vector<Job> jobs;
    jobs.reserve(events.size());
    for (const auto &ev : events) {
        Job job;
        job.arrival = ev.start;
        job.tasks.push_back(JobTask{ev.duration(), ev.cpuRate});
        jobs.push_back(std::move(job));
    }
    return jobs;
}

} // namespace pad::sched
