#include "sched/load_shedding.h"

#include <algorithm>

#include "obs/tracer.h"
#include "util/logging.h"

namespace pad::sched {

ShedDecision
LoadShedder::plan(std::vector<ShedCandidate> candidates,
                  Watts deficit) const
{
    ShedDecision decision;
    if (deficit <= 0.0 || candidates.empty())
        return decision;

    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const ShedCandidate &a, const ShedCandidate &b) {
                         if (a.priority != b.priority)
                             return a.priority < b.priority;
                         return a.releasedPower > b.releasedPower;
                     });

    for (const auto &c : candidates) {
        if (decision.releasedPower >= deficit)
            break;
        if (c.releasedPower <= 0.0)
            continue;
        decision.serversToSleep.push_back(c.serverId);
        decision.releasedPower += c.releasedPower;
    }
    decision.shedRatio =
        static_cast<double>(decision.serversToSleep.size()) /
        static_cast<double>(candidates.size());
    totalShed_ += decision.serversToSleep.size();
    if (!decision.serversToSleep.empty() && obs::traceEnabled())
        obs::emit("shedder", "shed.plan",
                  {obs::TraceField::num("deficit_w", deficit),
                   obs::TraceField::num("released_w",
                                        decision.releasedPower),
                   obs::TraceField::integer(
                       "servers", static_cast<std::int64_t>(
                                      decision.serversToSleep.size())),
                   obs::TraceField::num("ratio", decision.shedRatio)});
    return decision;
}

} // namespace pad::sched
