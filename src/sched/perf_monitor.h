/**
 * @file
 * Cluster throughput accounting (paper §VI-C, Fig. 16).
 *
 * The paper normalizes "overall data center throughput during the
 * attack period": work executed divided by work demanded. DVFS
 * capping (PSPC) and load shedding (Level-3 emergencies) charge
 * their lost work here.
 */

#ifndef PAD_SCHED_PERF_MONITOR_H
#define PAD_SCHED_PERF_MONITOR_H

#include <cstdint>

#include "util/types.h"

namespace pad::sched {

/**
 * Accumulates demanded vs executed work in utilization-seconds.
 */
class PerfMonitor
{
  public:
    /**
     * Record one server-step.
     *
     * @param demandedUtil utilization the workload asked for
     * @param executedUtil utilization actually executed (after DVFS
     *                     capping or shedding)
     * @param dt           step length, seconds
     */
    void record(double demandedUtil, double executedUtil, double dt);

    /** Charge a fully-shed server-step (nothing executes). */
    void recordShed(double demandedUtil, double dt);

    /** Executed / demanded work; 1.0 when nothing was demanded. */
    double normalizedThroughput() const;

    /** Total demanded work, utilization-seconds. */
    double demandedWork() const { return demanded_; }

    /** Total executed work, utilization-seconds. */
    double executedWork() const { return executed_; }

    /** Reset the accumulators. */
    void reset();

  private:
    double demanded_ = 0.0;
    double executed_ = 0.0;
};

} // namespace pad::sched

#endif // PAD_SCHED_PERF_MONITOR_H
