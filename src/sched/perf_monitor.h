/**
 * @file
 * Cluster throughput accounting (paper §VI-C, Fig. 16).
 *
 * The paper normalizes "overall data center throughput during the
 * attack period": work executed divided by work demanded. DVFS
 * capping (PSPC) and load shedding (Level-3 emergencies) charge
 * their lost work here.
 */

#ifndef PAD_SCHED_PERF_MONITOR_H
#define PAD_SCHED_PERF_MONITOR_H

#include <algorithm>
#include <cstdint>

#include "util/logging.h"
#include "util/types.h"

namespace pad::sched {

/**
 * Accumulates demanded vs executed work in utilization-seconds.
 */
class PerfMonitor
{
  public:
    /**
     * Record one server-step.
     *
     * Inline: this runs once (or twice, with a window monitor) per
     * server per simulation step, and the accumulation order is part
     * of the determinism contract — per server, demanded then
     * executed — so it is kept as a header-inline per-sample update
     * rather than batched.
     *
     * @param demandedUtil utilization the workload asked for
     * @param executedUtil utilization actually executed (after DVFS
     *                     capping or shedding)
     * @param dt           step length, seconds
     */
    void
    record(double demandedUtil, double executedUtil, double dt)
    {
        PAD_ASSERT(dt >= 0.0);
        PAD_ASSERT(executedUtil <= demandedUtil + 1e-9,
                   "cannot execute more than demanded");
        demanded_ += std::max(0.0, demandedUtil) * dt;
        executed_ += std::max(0.0, executedUtil) * dt;
    }

    /** Charge a fully-shed server-step (nothing executes). */
    void
    recordShed(double demandedUtil, double dt)
    {
        record(demandedUtil, 0.0, dt);
    }

    /** Executed / demanded work; 1.0 when nothing was demanded. */
    double normalizedThroughput() const;

    /** Total demanded work, utilization-seconds. */
    double demandedWork() const { return demanded_; }

    /** Total executed work, utilization-seconds. */
    double executedWork() const { return executed_; }

    /** Reset the accumulators. */
    void reset();

  private:
    double demanded_ = 0.0;
    double executed_ = 0.0;
};

} // namespace pad::sched

#endif // PAD_SCHED_PERF_MONITOR_H
