/**
 * @file
 * The job scheduler of the paper's simulation framework (Fig. 11-B):
 * "Work arrives at the cluster in the form of jobs. A job is
 * comprised of one or more tasks, each of which is accompanied by a
 * set of resource requirements used for dispatching the tasks onto
 * machines."
 *
 * The scheduler assigns a machine to every task under a placement
 * policy. Placement matters to the power study: packing load onto
 * few racks creates exactly the hot, battery-draining racks a power
 * virus hunts for, while power-aware spreading flattens rack peaks.
 */

#ifndef PAD_SCHED_JOB_SCHEDULER_H
#define PAD_SCHED_JOB_SCHEDULER_H

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "trace/task_event.h"
#include "util/random.h"

namespace pad::sched {

/** One task of a job, before placement. */
struct JobTask {
    /** Run time once started. */
    Tick duration = 0;
    /** CPU demand while running, cores-fraction. */
    double cpuRate = 0.0;
};

/** A job: an arrival time plus one or more tasks. */
struct Job {
    Tick arrival = 0;
    std::vector<JobTask> tasks;
};

/** Placement policies. */
enum class PlacementPolicy {
    /** Cycle through machines in order. */
    RoundRobin,
    /** Uniform random machine. */
    Random,
    /** Machine with the lowest projected utilization. */
    LeastLoaded,
    /**
     * Least-loaded machine in the rack with the most power headroom:
     * avoids stacking concurrent load onto one rack, the condition
     * that drains its DEB (the scheduler-side complement of vDEB).
     */
    PowerAware,
};

/** Human-readable policy name. */
std::string placementPolicyName(PlacementPolicy policy);

/**
 * Assigns machines to job tasks, tracking projected per-machine load.
 */
class JobScheduler
{
  public:
    /**
     * @param machines        number of machines
     * @param machinesPerRack rack granularity for PowerAware
     * @param policy          placement policy
     * @param seed            determinism for the Random policy
     */
    JobScheduler(int machines, int machinesPerRack,
                 PlacementPolicy policy, std::uint64_t seed = 17);

    /**
     * Place every task of every job.
     *
     * Jobs are processed in arrival order; each task starts at the
     * job's arrival. The scheduler tracks projected utilization of
     * each machine over time (releasing load when tasks finish) and
     * places according to the policy.
     *
     * @return one TaskEvent per task, machine ids filled in
     */
    std::vector<trace::TaskEvent>
    schedule(const std::vector<Job> &jobs);

    /** Projected utilization of @p machine right now. */
    double projectedLoad(int machine) const;

    /** Static policy. */
    PlacementPolicy policy() const { return policy_; }

  private:
    /** Release finished tasks up to time @p now. */
    void expire(Tick now);

    /** Pick a machine for a task arriving at @p now. */
    int place(Tick now, double cpuRate);

    struct Release {
        Tick when;
        int machine;
        double cpuRate;
        bool
        operator>(const Release &other) const
        {
            return when > other.when;
        }
    };

    int machines_;
    int machinesPerRack_;
    PlacementPolicy policy_;
    Rng rng_;
    int nextRoundRobin_ = 0;
    std::vector<double> load_;
    std::priority_queue<Release, std::vector<Release>,
                        std::greater<Release>>
        releases_;
};

/**
 * Convert scheduled task events back into jobs (strip machines) —
 * used to re-place an existing trace under a different policy.
 */
std::vector<Job> jobsFromEvents(
    const std::vector<trace::TaskEvent> &events);

} // namespace pad::sched

#endif // PAD_SCHED_JOB_SCHEDULER_H
