/**
 * @file
 * Level-3 emergency load shedding (paper §IV-A, §VI-A, Fig. 14).
 *
 * "By sleeping only a small amount of servers, one can prevent the
 * majority of data center racks from power-related attacks." The
 * shedder picks the cheapest set of low-priority servers whose
 * removal closes a power deficit; PAD applies it only in extreme
 * cluster-wide peaks, and the paper shows a ~3% shedding ratio
 * flattens the battery usage map.
 */

#ifndef PAD_SCHED_LOAD_SHEDDING_H
#define PAD_SCHED_LOAD_SHEDDING_H

#include <cstdint>
#include <vector>

#include "util/types.h"

namespace pad::sched {

/** One shedding candidate. */
struct ShedCandidate {
    /** Opaque server id (owned by the caller). */
    int serverId = 0;
    /** Power released if this server sleeps, watts. */
    Watts releasedPower = 0.0;
    /** Priority class: higher = more critical, shed later. */
    int priority = 0;
};

/** Result of one shedding decision. */
struct ShedDecision {
    /** Ids of the servers put to sleep, in shed order. */
    std::vector<int> serversToSleep;
    /** Power released in total, watts. */
    Watts releasedPower = 0.0;
    /** Fraction of candidate servers shed. */
    double shedRatio = 0.0;
};

/**
 * Greedy deficit-closing shedder.
 */
class LoadShedder
{
  public:
    /**
     * Choose servers to sleep until @p deficit watts are released.
     *
     * Candidates are taken lowest priority first; within a priority
     * class, largest released power first (fewest servers shed).
     *
     * @param candidates servers eligible for shedding
     * @param deficit    power shortfall to close, watts
     */
    ShedDecision plan(std::vector<ShedCandidate> candidates,
                      Watts deficit) const;

    /** Lifetime count of servers shed across plan() calls. */
    std::uint64_t totalShed() const { return totalShed_; }

  private:
    mutable std::uint64_t totalShed_ = 0;
};

} // namespace pad::sched

#endif // PAD_SCHED_LOAD_SHEDDING_H
