#include "sched/perf_monitor.h"

#include <algorithm>

#include "util/logging.h"

namespace pad::sched {

void
PerfMonitor::record(double demandedUtil, double executedUtil, double dt)
{
    PAD_ASSERT(dt >= 0.0);
    PAD_ASSERT(executedUtil <= demandedUtil + 1e-9,
               "cannot execute more than demanded");
    demanded_ += std::max(0.0, demandedUtil) * dt;
    executed_ += std::max(0.0, executedUtil) * dt;
}

void
PerfMonitor::recordShed(double demandedUtil, double dt)
{
    record(demandedUtil, 0.0, dt);
}

double
PerfMonitor::normalizedThroughput() const
{
    if (demanded_ <= 0.0)
        return 1.0;
    return executed_ / demanded_;
}

void
PerfMonitor::reset()
{
    demanded_ = 0.0;
    executed_ = 0.0;
}

} // namespace pad::sched
