#include "sched/perf_monitor.h"

namespace pad::sched {

double
PerfMonitor::normalizedThroughput() const
{
    if (demanded_ <= 0.0)
        return 1.0;
    return executed_ / demanded_;
}

void
PerfMonitor::reset()
{
    demanded_ = 0.0;
    executed_ = 0.0;
}

} // namespace pad::sched
