#include "trace/google_trace.h"

#include <algorithm>
#include <cstdlib>

#include "util/csv.h"
#include "util/logging.h"
#include "util/table.h"

namespace pad::trace {

namespace {

bool
looksLikeHeader(const std::vector<std::string> &fields)
{
    if (fields.empty())
        return false;
    char *end = nullptr;
    std::strtod(fields[0].c_str(), &end);
    return end == fields[0].c_str(); // first field is not numeric
}

double
parseDouble(const std::string &s, const char *what, std::size_t record)
{
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || *end != '\0')
        PAD_FATAL("trace record {}: bad {} field '{}'", record, what, s);
    return v;
}

} // namespace

std::vector<TaskEvent>
readTaskTraceCsv(const std::string &path)
{
    CsvReader reader(path);
    std::vector<TaskEvent> events;
    std::vector<std::string> fields;
    bool first = true;
    while (reader.next(fields)) {
        if (!fields.empty() && !fields[0].empty() && fields[0][0] == '#')
            continue;
        if (first) {
            first = false;
            if (looksLikeHeader(fields))
                continue;
        }
        if (fields.size() < 4)
            PAD_FATAL("trace record {}: expected 4 fields, got {}",
                      reader.recordsRead(), fields.size());
        const std::size_t rec = reader.recordsRead();
        TaskEvent ev;
        ev.start = secondsToTicks(parseDouble(fields[0], "start", rec));
        ev.end = secondsToTicks(parseDouble(fields[1], "end", rec));
        ev.machine = static_cast<std::int32_t>(
            parseDouble(fields[2], "machine", rec));
        ev.cpuRate = parseDouble(fields[3], "cpu_rate", rec);
        if (ev.end < ev.start)
            PAD_FATAL("trace record {}: end before start", rec);
        if (ev.cpuRate < 0.0)
            PAD_FATAL("trace record {}: negative cpu rate", rec);
        events.push_back(ev);
    }
    std::sort(events.begin(), events.end(),
              [](const TaskEvent &a, const TaskEvent &b) {
                  return a.start < b.start;
              });
    return events;
}

void
writeTaskTraceCsv(const std::string &path,
                  const std::vector<TaskEvent> &events)
{
    CsvWriter writer(path);
    writer.write({"start_seconds", "end_seconds", "machine_id",
                  "cpu_rate"});
    for (const auto &ev : events) {
        writer.write({formatFixed(ticksToSeconds(ev.start), 0),
                      formatFixed(ticksToSeconds(ev.end), 0),
                      std::to_string(ev.machine),
                      formatFixed(ev.cpuRate, 4)});
    }
    writer.flush();
}

} // namespace pad::trace
