/**
 * @file
 * Reader/writer for cluster task traces in the compact CSV form the
 * simulator consumes: one record per task, columns
 *
 *   start_seconds, end_seconds, machine_id, cpu_rate
 *
 * A user with access to the original Google cluster data 2010 trace
 * can flatten it to this schema; the bundled SyntheticGoogleTrace
 * generator emits the same schema (see DESIGN.md substitution table).
 */

#ifndef PAD_TRACE_GOOGLE_TRACE_H
#define PAD_TRACE_GOOGLE_TRACE_H

#include <string>
#include <vector>

#include "trace/task_event.h"

namespace pad::trace {

/**
 * Load a task trace from @p path.
 *
 * Records with a header row, blank lines, or comment lines starting
 * with '#' are tolerated. Malformed records abort with fatal() since
 * silently dropping trace rows would bias the evaluation.
 *
 * @param path CSV file path
 * @return events sorted by start time
 */
std::vector<TaskEvent> readTaskTraceCsv(const std::string &path);

/** Write @p events to @p path in the same schema. */
void writeTaskTraceCsv(const std::string &path,
                       const std::vector<TaskEvent> &events);

} // namespace pad::trace

#endif // PAD_TRACE_GOOGLE_TRACE_H
