/**
 * @file
 * Task-event schema for cluster traces.
 *
 * The paper consumes the 2010 Google compute cluster trace: "Every
 * line in this trace includes start time, end time, machine ID, and
 * CPU rate of the task" at 5-minute granularity over ~220 machines
 * for one month. This struct is that record.
 */

#ifndef PAD_TRACE_TASK_EVENT_H
#define PAD_TRACE_TASK_EVENT_H

#include <cstdint>

#include "util/types.h"

namespace pad::trace {

/** One task placement on one machine. */
struct TaskEvent {
    /** Task start time. */
    Tick start = 0;
    /** Task end time (exclusive). */
    Tick end = 0;
    /** Machine the task was dispatched to. */
    std::int32_t machine = 0;
    /** Average CPU rate demanded while running, in cores-fraction. */
    double cpuRate = 0.0;

    /** Task duration in ticks. */
    Tick duration() const { return end - start; }

    /** True when the task is active at @p t. */
    bool
    activeAt(Tick t) const
    {
        return t >= start && t < end;
    }
};

/** The paper's trace granularity: one slot per five minutes. */
constexpr Tick kTraceSlotTicks = 5 * kTicksPerMinute;

} // namespace pad::trace

#endif // PAD_TRACE_TASK_EVENT_H
