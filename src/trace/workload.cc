#include "trace/workload.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/random.h"

namespace pad::trace {

Workload::Workload(const std::vector<TaskEvent> &events, int machines,
                   Tick horizon, Tick slotTicks)
    : machines_(machines), slotTicks_(slotTicks)
{
    PAD_ASSERT(machines_ > 0);
    PAD_ASSERT(slotTicks_ > 0);
    PAD_ASSERT(horizon > 0);
    slots_ = static_cast<std::size_t>((horizon + slotTicks_ - 1) /
                                      slotTicks_);
    grid_.assign(static_cast<std::size_t>(machines_) * slots_, 0.0);

    std::size_t dropped = 0;
    for (const auto &ev : events) {
        if (ev.machine < 0 || ev.machine >= machines_) {
            ++dropped;
            continue;
        }
        const Tick start = std::max<Tick>(ev.start, 0);
        const Tick end = std::min<Tick>(ev.end, horizon);
        if (end <= start)
            continue;
        auto firstSlot = static_cast<std::size_t>(start / slotTicks_);
        auto lastSlot = static_cast<std::size_t>((end - 1) / slotTicks_);
        for (std::size_t s = firstSlot; s <= lastSlot && s < slots_; ++s) {
            const Tick slotStart = static_cast<Tick>(s) * slotTicks_;
            const Tick slotEnd = slotStart + slotTicks_;
            const Tick overlap =
                std::min(end, slotEnd) - std::max(start, slotStart);
            const double frac = static_cast<double>(overlap) /
                                static_cast<double>(slotTicks_);
            grid_[index(ev.machine, s)] += ev.cpuRate * frac;
        }
    }
    if (dropped > 0)
        warn("workload: dropped {} events with out-of-range machine ids",
             dropped);

    for (auto &u : grid_)
        u = std::min(u, 1.0);
}

std::size_t
Workload::index(int machine, std::size_t slot) const
{
    PAD_ASSERT(machine >= 0 && machine < machines_ && slot < slots_);
    return static_cast<std::size_t>(machine) * slots_ + slot;
}

double
Workload::utilAtSlot(int machine, std::size_t slot) const
{
    return grid_[index(machine, slot)];
}

std::size_t
Workload::slotAt(Tick t) const
{
    return static_cast<std::size_t>(
        std::clamp<Tick>(t, 0, horizon() - 1) / slotTicks_);
}

double
Workload::utilAt(int machine, Tick t) const
{
    return utilAtSlot(machine, slotAt(t));
}

double
Workload::jitterAt(int machine, std::uint64_t second)
{
    // One counter-based stream per machine (key = machine << 40),
    // indexed by wall-clock second; bit-identical to the historical
    // file-local splitmix64 hash of (machine << 40) ^ second.
    const CounterRng stream(static_cast<std::uint64_t>(machine) << 40);
    return stream.signedUnitAt(second);
}

double
Workload::utilFine(int machine, Tick t, double noiseAmp) const
{
    const double base = utilAt(machine, t);
    const auto second = static_cast<std::uint64_t>(t / kTicksPerSecond);
    return combineFine(base, jitterAt(machine, second), noiseAmp);
}

double
Workload::clusterUtilAt(Tick t) const
{
    double total = 0.0;
    for (int m = 0; m < machines_; ++m)
        total += utilAt(m, t);
    return total / static_cast<double>(machines_);
}

double
Workload::machineMeanUtil(int machine) const
{
    double total = 0.0;
    for (std::size_t s = 0; s < slots_; ++s)
        total += utilAtSlot(machine, s);
    return total / static_cast<double>(slots_);
}

double
Workload::overallMeanUtil() const
{
    double total = 0.0;
    for (double u : grid_)
        total += u;
    return total / static_cast<double>(grid_.size());
}

} // namespace pad::trace
