/**
 * @file
 * Per-machine utilization timeline built from a task trace.
 *
 * The simulator queries workload utilization at two granularities:
 * the trace's native 5-minute slots (coarse simulation of battery
 * SOC over days/weeks), and a deterministic fine-grained view with
 * second-scale jitter used when the attack window is simulated at
 * sub-second resolution.
 */

#ifndef PAD_TRACE_WORKLOAD_H
#define PAD_TRACE_WORKLOAD_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "trace/task_event.h"

namespace pad::trace {

/** Default relative jitter amplitude of the fine-grained view. */
constexpr double kDefaultFineNoiseAmp = 0.15;

/**
 * Dense (machine x slot) utilization grid.
 */
class Workload
{
  public:
    /**
     * Build the grid from task events.
     *
     * @param events    task placements (any order)
     * @param machines  number of machines (ids beyond it are dropped
     *                  with a warning)
     * @param horizon   timeline length in ticks
     * @param slotTicks slot width (default: the trace's 5 minutes)
     */
    Workload(const std::vector<TaskEvent> &events, int machines,
             Tick horizon, Tick slotTicks = kTraceSlotTicks);

    /** Number of machines. */
    int machines() const { return machines_; }

    /** Number of slots. */
    std::size_t slots() const { return slots_; }

    /** Slot width in ticks. */
    Tick slotTicks() const { return slotTicks_; }

    /** Timeline length in ticks. */
    Tick horizon() const { return slotTicks_ * static_cast<Tick>(slots_); }

    /** Slot-average utilization of @p machine at tick @p t, in [0,1]. */
    double utilAt(int machine, Tick t) const;

    /** Slot-average utilization by slot index. */
    double utilAtSlot(int machine, std::size_t slot) const;

    /** Slot index covering tick @p t (clamped into the timeline). */
    std::size_t slotAt(Tick t) const;

    /**
     * The deterministic jitter sample utilFine() layers on the slot
     * average: splitmix64 of (machine, second) mapped into [-1, 1].
     * Exposed so per-tick callers can hoist the hash out of their
     * inner loops — combineFine(utilAtSlot(m, slotAt(t)),
     * jitterAt(m, t / kTicksPerSecond), amp) == utilFine(m, t, amp)
     * bit for bit.
     */
    static double jitterAt(int machine, std::uint64_t second);

    /** Combine a slot average and a jitter sample as utilFine() does. */
    static double
    combineFine(double base, double jitter, double noiseAmp)
    {
        return std::clamp(base * (1.0 + noiseAmp * jitter), 0.0, 1.0);
    }

    /**
     * Fine-grained utilization with deterministic second-scale
     * jitter layered on the slot average: the same (machine, second)
     * always returns the same value, so fine simulations are
     * reproducible without storing a second-level grid.
     *
     * @param machine   machine id
     * @param t         query tick
     * @param noiseAmp  relative jitter amplitude (e.g. 0.15)
     */
    double utilFine(int machine, Tick t,
                    double noiseAmp = kDefaultFineNoiseAmp) const;

    /** Mean utilization across all machines at tick @p t. */
    double clusterUtilAt(Tick t) const;

    /** Mean utilization of one machine over the whole timeline. */
    double machineMeanUtil(int machine) const;

    /** Mean utilization over all machines and slots. */
    double overallMeanUtil() const;

  private:
    std::size_t index(int machine, std::size_t slot) const;

    int machines_;
    std::size_t slots_;
    Tick slotTicks_;
    std::vector<double> grid_;
};

} // namespace pad::trace

#endif // PAD_TRACE_WORKLOAD_H
