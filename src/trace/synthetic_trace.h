/**
 * @file
 * Synthetic Google-style cluster trace generator.
 *
 * Stands in for the proprietary May-2010 Google compute cluster
 * trace (~220 machines, one month, 5-minute intervals). The
 * generator reproduces the statistical features the power study
 * depends on:
 *
 *  - a diurnal cluster-wide load pattern with day/night swing,
 *  - Poisson job arrivals whose rate follows the diurnal curve,
 *  - jobs of one or more tasks with heavy-tailed (bounded Pareto)
 *    durations and CPU demands,
 *  - machine skew (some machines persistently hotter than others),
 *  - optional periodic cluster-wide surges (used for Fig. 14's load
 *    shedding study).
 */

#ifndef PAD_TRACE_SYNTHETIC_TRACE_H
#define PAD_TRACE_SYNTHETIC_TRACE_H

#include <cstdint>
#include <vector>

#include "trace/task_event.h"
#include "util/random.h"

namespace pad::trace {

/** Generator parameters. */
struct SyntheticTraceConfig {
    /** Number of machines in the cluster. */
    int machines = 220;
    /** Length of the trace in days. */
    double days = 30.0;
    /** RNG seed for full reproducibility. */
    std::uint64_t seed = 42;

    /** Mean jobs arriving per hour at the diurnal midpoint. */
    double jobsPerHour = 550.0;
    /** Mean tasks per job (geometric). */
    double tasksPerJob = 3.5;
    /** Bounded-Pareto tail index for task duration. */
    double durationAlpha = 1.6;
    /** Shortest task duration, seconds. */
    double minDurationSec = 300.0;
    /** Longest task duration, seconds. */
    double maxDurationSec = 12.0 * 3600.0;
    /** Bounded-Pareto tail index for per-task CPU rate. */
    double cpuAlpha = 2.0;
    /** Smallest per-task CPU rate. */
    double minCpuRate = 0.04;
    /** Largest per-task CPU rate. */
    double maxCpuRate = 0.60;

    /** Fraction of diurnal swing (0 = flat, 1 = full day/night). */
    double diurnalSwing = 0.55;
    /** Machine skew: stddev of per-machine placement weight. */
    double machineSkew = 0.5;

    /** Baseline always-on utilization per machine. */
    double baseUtilization = 0.05;

    /** Inject a cluster-wide surge every this many hours (0 = off). */
    double surgePeriodHours = 0.0;
    /** Surge duration, minutes. */
    double surgeDurationMin = 30.0;
    /** Extra CPU rate added on every machine during a surge. */
    double surgeCpuRate = 0.25;
};

/**
 * Deterministic synthetic trace generator.
 */
class SyntheticGoogleTrace
{
  public:
    explicit SyntheticGoogleTrace(const SyntheticTraceConfig &config);

    /** Generate the full task-event list, sorted by start time. */
    std::vector<TaskEvent> generate();

    /** Static configuration. */
    const SyntheticTraceConfig &config() const { return config_; }

  private:
    /** Diurnal modulation factor at tick @p t (mean 1.0). */
    double diurnalFactor(Tick t) const;

    /** Pick a machine according to the skewed placement weights. */
    int pickMachine(Rng &rng) const;

    SyntheticTraceConfig config_;
    std::vector<double> machineWeightCdf_;
};

} // namespace pad::trace

#endif // PAD_TRACE_SYNTHETIC_TRACE_H
