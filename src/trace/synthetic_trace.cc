#include "trace/synthetic_trace.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace pad::trace {

SyntheticGoogleTrace::SyntheticGoogleTrace(
    const SyntheticTraceConfig &config)
    : config_(config)
{
    PAD_ASSERT(config_.machines > 0);
    PAD_ASSERT(config_.days > 0.0);
    PAD_ASSERT(config_.jobsPerHour > 0.0);
    PAD_ASSERT(config_.minDurationSec > 0.0 &&
               config_.maxDurationSec > config_.minDurationSec);
    PAD_ASSERT(config_.minCpuRate > 0.0 &&
               config_.maxCpuRate > config_.minCpuRate);
    PAD_ASSERT(config_.diurnalSwing >= 0.0 && config_.diurnalSwing < 1.0);

    // Build the skewed machine placement distribution once; log-normal
    // weights give a realistic mix of hot and cold machines.
    Rng rng(config_.seed ^ 0xfeedULL);
    machineWeightCdf_.resize(static_cast<std::size_t>(config_.machines));
    double total = 0.0;
    for (auto &w : machineWeightCdf_) {
        w = std::exp(rng.normal(0.0, config_.machineSkew));
        total += w;
    }
    double run = 0.0;
    for (auto &w : machineWeightCdf_) {
        run += w / total;
        w = run;
    }
    machineWeightCdf_.back() = 1.0;
}

double
SyntheticGoogleTrace::diurnalFactor(Tick t) const
{
    // Peak mid-afternoon, trough before dawn; mean exactly 1.0.
    const double dayFrac =
        static_cast<double>(t % kTicksPerDay) /
        static_cast<double>(kTicksPerDay);
    const double phase = 2.0 * M_PI * (dayFrac - 0.25);
    return 1.0 + config_.diurnalSwing * std::sin(phase);
}

int
SyntheticGoogleTrace::pickMachine(Rng &rng) const
{
    const double u = rng.uniform();
    auto it = std::lower_bound(machineWeightCdf_.begin(),
                               machineWeightCdf_.end(), u);
    if (it == machineWeightCdf_.end())
        --it;
    return static_cast<int>(it - machineWeightCdf_.begin());
}

std::vector<TaskEvent>
SyntheticGoogleTrace::generate()
{
    Rng rng(config_.seed);
    std::vector<TaskEvent> events;

    const Tick horizon =
        static_cast<Tick>(config_.days * static_cast<double>(kTicksPerDay));

    // Baseline always-on load: one long task per machine.
    for (int m = 0; m < config_.machines; ++m) {
        if (config_.baseUtilization <= 0.0)
            break;
        TaskEvent ev;
        ev.start = 0;
        ev.end = horizon;
        ev.machine = m;
        ev.cpuRate = config_.baseUtilization *
                     (0.75 + 0.5 * rng.uniform());
        events.push_back(ev);
    }

    // Poisson job arrivals thinned by the diurnal curve. We draw from
    // a homogeneous process at the peak rate and accept with
    // probability diurnal/peak (standard thinning).
    const double peakRate =
        config_.jobsPerHour * (1.0 + config_.diurnalSwing); // per hour
    const double ticksPerArrival =
        static_cast<double>(kTicksPerHour) / peakRate;
    const double peakFactor = 1.0 + config_.diurnalSwing;

    Tick t = 0;
    while (true) {
        t += static_cast<Tick>(
            rng.exponential(1.0 / ticksPerArrival) + 1.0);
        if (t >= horizon)
            break;
        if (!rng.chance(diurnalFactor(t) / peakFactor))
            continue;

        // Geometric task count with the configured mean.
        const double pStop = 1.0 / config_.tasksPerJob;
        int ntasks = 1;
        while (!rng.chance(pStop) && ntasks < 64)
            ++ntasks;

        for (int k = 0; k < ntasks; ++k) {
            TaskEvent ev;
            ev.start = t;
            const double dur = rng.boundedPareto(config_.durationAlpha,
                                                 config_.minDurationSec,
                                                 config_.maxDurationSec);
            ev.end = std::min(horizon, t + secondsToTicks(dur));
            ev.machine = pickMachine(rng);
            ev.cpuRate = rng.boundedPareto(
                config_.cpuAlpha, config_.minCpuRate, config_.maxCpuRate);
            events.push_back(ev);
        }
    }

    // Optional periodic cluster-wide surges (Fig. 14 scenario).
    if (config_.surgePeriodHours > 0.0) {
        const Tick period = static_cast<Tick>(
            config_.surgePeriodHours * static_cast<double>(kTicksPerHour));
        const Tick width = static_cast<Tick>(
            config_.surgeDurationMin * static_cast<double>(kTicksPerMinute));
        for (Tick s = period; s + width <= horizon; s += period) {
            for (int m = 0; m < config_.machines; ++m) {
                TaskEvent ev;
                ev.start = s;
                ev.end = s + width;
                ev.machine = m;
                ev.cpuRate = config_.surgeCpuRate *
                             (0.8 + 0.4 * rng.uniform());
                events.push_back(ev);
            }
        }
    }

    std::sort(events.begin(), events.end(),
              [](const TaskEvent &a, const TaskEvent &b) {
                  return a.start < b.start;
              });
    return events;
}

} // namespace pad::trace
