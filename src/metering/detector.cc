#include "metering/detector.h"

#include <algorithm>

#include "util/logging.h"

namespace pad::metering {

SpikeDetector::SpikeDetector(std::string name, const DetectorConfig &config,
                             Watts baseline)
    : name_(std::move(name)), config_(config), baseline_(baseline),
      meter_(name_ + ".meter", config.interval)
{
    PAD_ASSERT(config_.interval > 0);
    PAD_ASSERT(config_.relativeMargin >= 0.0);
    PAD_ASSERT(baseline_ > 0.0);
}

Watts
SpikeDetector::threshold() const
{
    return baseline_ * (1.0 + config_.relativeMargin);
}

void
SpikeDetector::observe(Watts power, Tick dt)
{
    meter_.observe(power, dt);
    scanNewReadings();
}

void
SpikeDetector::scanNewReadings()
{
    const auto &readings = meter_.readings();
    for (; scanned_ < readings.size(); ++scanned_) {
        const auto &r = readings[scanned_];
        if (r.average > threshold())
            flags_.push_back(
                AnomalyFlag{r.when - config_.interval, r.when});
    }
}

bool
SpikeDetector::flaggedAt(Tick t) const
{
    for (const auto &f : flags_)
        if (t >= f.start && t < f.end)
            return true;
    return false;
}

double
SpikeDetector::detectionRate(
    const std::vector<std::pair<Tick, Tick>> &spikeWindows) const
{
    if (spikeWindows.empty())
        return 0.0;
    std::size_t detected = 0;
    for (const auto &[start, end] : spikeWindows) {
        const bool hit = std::any_of(
            flags_.begin(), flags_.end(), [&](const AnomalyFlag &f) {
                return start < f.end && end > f.start;
            });
        if (hit)
            ++detected;
    }
    return static_cast<double>(detected) /
           static_cast<double>(spikeWindows.size());
}

} // namespace pad::metering
