/**
 * @file
 * Utilization-based spike detection (paper §III-B, Table I).
 *
 * Data centers estimate power from energy counters averaged over a
 * metering interval; a hidden spike is "detected" only when it lifts
 * some interval's average measurably above the expected baseline.
 * The paper evaluates intervals from 5 s to 15 min and shows that
 * (a) narrow, rare spikes vanish into coarse averages, and (b) wide,
 * frequent spikes raise the duty cycle enough that even very coarse
 * metering eventually flags them.
 */

#ifndef PAD_METERING_DETECTOR_H
#define PAD_METERING_DETECTOR_H

#include <string>
#include <vector>

#include "power/power_meter.h"
#include "util/types.h"

namespace pad::metering {

/** Detector configuration. */
struct DetectorConfig {
    /** Metering interval, ticks. */
    Tick interval = 5 * kTicksPerSecond;
    /**
     * Relative margin above the expected baseline average that
     * triggers an anomaly flag (typical monitoring noise band).
     */
    double relativeMargin = 0.04;
};

/** A flagged metering interval. */
struct AnomalyFlag {
    Tick start = 0;
    Tick end = 0;
};

/**
 * Threshold detector over one metered feed (one server or one rack).
 */
class SpikeDetector
{
  public:
    /**
     * @param name     telemetry name
     * @param config   detector parameters
     * @param baseline expected average power of the monitored feed
     */
    SpikeDetector(std::string name, const DetectorConfig &config,
                  Watts baseline);

    /** Feed a constant draw for @p dt ticks. */
    void observe(Watts power, Tick dt);

    /** Intervals whose average exceeded the threshold. */
    const std::vector<AnomalyFlag> &flags() const { return flags_; }

    /** True when tick @p t lies inside a flagged interval. */
    bool flaggedAt(Tick t) const;

    /**
     * Fraction of the given spike windows that overlap any flagged
     * interval — the paper's "detection rate".
     *
     * @param spikeWindows (start, end) ticks of each launched spike
     */
    double detectionRate(
        const std::vector<std::pair<Tick, Tick>> &spikeWindows) const;

    /** Detection threshold in watts. */
    Watts threshold() const;

    /** Detector parameters. */
    const DetectorConfig &config() const { return config_; }

  private:
    void scanNewReadings();

    std::string name_;
    DetectorConfig config_;
    Watts baseline_;
    power::PowerMeter meter_;
    std::size_t scanned_ = 0;
    std::vector<AnomalyFlag> flags_;
};

} // namespace pad::metering

#endif // PAD_METERING_DETECTOR_H
