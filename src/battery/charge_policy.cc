#include "battery/charge_policy.h"

#include <algorithm>
#include <numeric>

#include "util/engine_tuning.h"
#include "util/logging.h"

namespace pad::battery {

ChargePolicyKind
chargePolicyFromName(const std::string &name)
{
    if (name == "online")
        return ChargePolicyKind::Online;
    if (name == "offline")
        return ChargePolicyKind::Offline;
    PAD_FATAL("unknown charge policy: {}", name);
}

std::string
chargePolicyName(ChargePolicyKind kind)
{
    return kind == ChargePolicyKind::Online ? "online" : "offline";
}

ChargeController::ChargeController(const ChargeControllerConfig &config)
    : config_(config)
{
    PAD_ASSERT(config_.offlineStartSoc < config_.offlineStopSoc);
}

bool
ChargeController::wantsCharge(const BatteryUnit &unit,
                              std::size_t index) const
{
    if (config_.kind == ChargePolicyKind::Online)
        return unit.soc() < 0.999;

    if (recharging_.size() <= index)
        recharging_.resize(index + 1, false);
    const double soc = unit.soc();
    if (recharging_[index]) {
        if (soc >= config_.offlineStopSoc)
            recharging_[index] = false;
    } else if (soc <= config_.offlineStartSoc) {
        recharging_[index] = true;
    }
    return recharging_[index];
}

Joules
ChargeController::recharge(std::vector<BatteryUnit *> &units,
                           Watts headroom, double dt)
{
    PAD_ASSERT(dt >= 0.0);
    if (headroom <= 0.0 || dt == 0.0 || units.empty())
        return 0.0;

    // Collect candidates ordered lowest SOC first so that the most
    // vulnerable units recover first when headroom is scarce. This
    // runs per rack per step; the Optimized profile reuses a sort
    // scratch and skips the (identity) sort of single-unit fleets.
    const bool scratch = engineTuning().stepScratchReuse;
    std::vector<std::size_t> localOrder;
    std::vector<std::size_t> &order =
        scratch ? orderScratch_ : localOrder;
    order.resize(units.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    if (!scratch || units.size() > 1)
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return units[a]->soc() < units[b]->soc();
                         });

    Joules absorbed = 0.0;
    Watts remaining = headroom;
    for (std::size_t idx : order) {
        if (remaining <= 0.0)
            break;
        BatteryUnit &unit = *units[idx];
        if (!wantsCharge(unit, idx))
            continue;
        const Watts offer =
            std::min(remaining, unit.config().maxChargePower);
        const Joules got = unit.charge(offer, dt);
        absorbed += got;
        remaining -= got / dt;
    }
    return absorbed;
}

} // namespace pad::battery
