#include "battery/supercap.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace pad::battery {

SuperCapacitor::SuperCapacitor(std::string name,
                               const SuperCapConfig &config)
    : name_(std::move(name)), config_(config), voltage_(config.vMax)
{
    PAD_ASSERT(config_.capacitanceF > 0.0);
    PAD_ASSERT(config_.vMax > config_.vMin && config_.vMin >= 0.0);
    PAD_ASSERT(config_.maxPower > 0.0);
    PAD_ASSERT(config_.efficiency > 0.0 && config_.efficiency <= 1.0);
}

Joules
SuperCapacitor::usableEnergy() const
{
    const double v2 = voltage_ * voltage_;
    const double vmin2 = config_.vMin * config_.vMin;
    return std::max(0.0, 0.5 * config_.capacitanceF * (v2 - vmin2));
}

Joules
SuperCapacitor::usableCapacity() const
{
    const double vmax2 = config_.vMax * config_.vMax;
    const double vmin2 = config_.vMin * config_.vMin;
    return 0.5 * config_.capacitanceF * (vmax2 - vmin2);
}

double
SuperCapacitor::soc() const
{
    return std::clamp(usableEnergy() / usableCapacity(), 0.0, 1.0);
}

Watts
SuperCapacitor::availablePower(double dt) const
{
    PAD_ASSERT(dt > 0.0);
    const Watts byEnergy = usableEnergy() * config_.efficiency / dt;
    return std::min(byEnergy, config_.maxPower);
}

Joules
SuperCapacitor::discharge(Watts requested, double dt)
{
    PAD_ASSERT(requested >= 0.0 && dt >= 0.0);
    if (requested == 0.0 || dt == 0.0 || depleted())
        return 0.0;
    const Watts bounded = std::min(requested, config_.maxPower);
    // Energy removed from the bank exceeds energy delivered by the
    // conversion efficiency factor.
    const Joules wantFromBank = bounded * dt / config_.efficiency;
    const Joules fromBank = std::min(wantFromBank, usableEnergy());
    const double v2 =
        voltage_ * voltage_ - 2.0 * fromBank / config_.capacitanceF;
    voltage_ = std::sqrt(std::max(v2, config_.vMin * config_.vMin));
    const Joules delivered = fromBank * config_.efficiency;
    totalDischarged_ += delivered;
    ++engagements_;
    return delivered;
}

Joules
SuperCapacitor::charge(Watts offered, double dt)
{
    PAD_ASSERT(offered >= 0.0 && dt >= 0.0);
    if (offered == 0.0 || dt == 0.0)
        return 0.0;
    const Joules room = 0.5 * config_.capacitanceF *
                        (config_.vMax * config_.vMax - voltage_ * voltage_);
    const Joules absorbed = std::min(offered * dt, room);
    const double v2 =
        voltage_ * voltage_ + 2.0 * absorbed / config_.capacitanceF;
    voltage_ = std::min(std::sqrt(v2), config_.vMax);
    return absorbed;
}

void
SuperCapacitor::setSoc(double soc)
{
    PAD_ASSERT(soc >= 0.0 && soc <= 1.0);
    const double vmin2 = config_.vMin * config_.vMin;
    const double vmax2 = config_.vMax * config_.vMax;
    voltage_ = std::sqrt(vmin2 + soc * (vmax2 - vmin2));
}

} // namespace pad::battery
