/**
 * @file
 * Recharge policies for DEB fleets (paper §II-B, Fig. 5).
 *
 * Offline charging recharges a unit only after its SOC drops below a
 * preset threshold, and then charges it to full; online charging
 * opportunistically tops up every unit whenever the upstream power
 * budget has headroom. The paper shows offline charging roughly
 * doubles the SOC variation across units, which is exactly the
 * vulnerability a power virus exploits.
 */

#ifndef PAD_BATTERY_CHARGE_POLICY_H
#define PAD_BATTERY_CHARGE_POLICY_H

#include <string>
#include <vector>

#include "battery/battery_unit.h"
#include "util/types.h"

namespace pad::battery {

/** Available recharge disciplines. */
enum class ChargePolicyKind {
    /** Recharge only below a threshold, then to full. */
    Offline,
    /** Opportunistic recharge whenever headroom exists. */
    Online,
};

/** Parse a policy name ("online"/"offline"); fatal() on bad input. */
ChargePolicyKind chargePolicyFromName(const std::string &name);

/** Human-readable policy name. */
std::string chargePolicyName(ChargePolicyKind kind);

/** Configuration for the charge controller. */
struct ChargeControllerConfig {
    ChargePolicyKind kind = ChargePolicyKind::Online;
    /** Offline policy: begin recharging at/below this SOC. */
    double offlineStartSoc = 0.70;
    /** Offline policy: stop recharging at/above this SOC. */
    double offlineStopSoc = 0.995;
};

/**
 * Distributes available charging headroom across a fleet of battery
 * units according to the configured policy.
 */
class ChargeController
{
  public:
    explicit ChargeController(const ChargeControllerConfig &config);

    /**
     * Spend up to @p headroom watts for @p dt seconds recharging
     * @p units.
     *
     * Online policy: headroom is split across all non-full units,
     * lowest SOC first. Offline policy: only units in their recharge
     * window (below start threshold, or still on the way to the stop
     * threshold) receive charge.
     *
     * @return total energy absorbed across the fleet, joules
     */
    Joules recharge(std::vector<BatteryUnit *> &units, Watts headroom,
                    double dt);

    /** Static configuration. */
    const ChargeControllerConfig &config() const { return config_; }

  private:
    bool wantsCharge(const BatteryUnit &unit, std::size_t index) const;

    ChargeControllerConfig config_;
    /** Offline policy latch: unit index -> currently recharging. */
    mutable std::vector<bool> recharging_;
    /** Hot-path sort scratch (Optimized engine profile). */
    std::vector<std::size_t> orderScratch_;
};

} // namespace pad::battery

#endif // PAD_BATTERY_CHARGE_POLICY_H
