/**
 * @file
 * Terminal-voltage model layered on the kinetic battery state.
 *
 * The LVD hardware the paper describes (Facebook V1 isolates at
 * 1.75 V/cell) senses voltage, not charge. For lead-acid chemistry
 * the open-circuit voltage tracks the available-well head (acid
 * concentration at the plates) roughly linearly, and the terminal
 * voltage adds an ohmic drop proportional to load current:
 *
 *   V_oc   = vEmpty + (vFull - vEmpty) x head
 *   V_term = V_oc - I x R_internal
 *
 * This model is used for telemetry and for validating that the
 * SOC-threshold LVD in BatteryUnit matches a voltage-threshold LVD.
 */

#ifndef PAD_BATTERY_VOLTAGE_MODEL_H
#define PAD_BATTERY_VOLTAGE_MODEL_H

#include "battery/kibam.h"
#include "util/types.h"

namespace pad::battery {

/** Per-cell electrical parameters (lead-acid defaults). */
struct VoltageModelConfig {
    /** Cells in series (6 for a 12 V block). */
    int cellsInSeries = 6;
    /** Open-circuit voltage per cell at full head, volts. */
    double vCellFull = 2.10;
    /** Open-circuit voltage per cell at empty head, volts. */
    double vCellEmpty = 1.70;
    /** Internal resistance of the whole string, ohms. */
    double internalResistanceOhm = 0.02;
    /** Nominal bus voltage used to convert power to current. */
    double nominalVoltage = 12.0;
};

/**
 * Maps a Kibam state and load power to pack voltages.
 */
class VoltageModel
{
  public:
    explicit VoltageModel(const VoltageModelConfig &config = {});

    /** Open-circuit pack voltage for the given kinetic state. */
    double openCircuitVoltage(const Kibam &state) const;

    /**
     * Terminal pack voltage under load.
     *
     * @param state kinetic battery state
     * @param load  discharge power, watts (>= 0)
     */
    double terminalVoltage(const Kibam &state, Watts load) const;

    /** Per-cell terminal voltage under load. */
    double cellVoltage(const Kibam &state, Watts load) const;

    /**
     * Load power at which the cell voltage hits @p vCellCutoff for
     * the given state (the power the LVD would allow).
     */
    Watts powerAtCellCutoff(const Kibam &state, double vCellCutoff) const;

    /** Static configuration. */
    const VoltageModelConfig &config() const { return config_; }

  private:
    /** Available-well head fraction in [0, 1]. */
    static double headFraction(const Kibam &state);

    VoltageModelConfig config_;
};

} // namespace pad::battery

#endif // PAD_BATTERY_VOLTAGE_MODEL_H
