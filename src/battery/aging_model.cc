#include "battery/aging_model.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace pad::battery {

AgingModel::AgingModel(const AgingModelConfig &config, Joules capacity)
    : config_(config), capacity_(capacity)
{
    PAD_ASSERT(capacity_ > 0.0);
    PAD_ASSERT(config_.cycleLife > 0.0);
    PAD_ASSERT(config_.referenceRateC > 0.0);
    PAD_ASSERT(config_.stressExponent >= 0.0);
    PAD_ASSERT(config_.calendarLifeHours > 0.0);
}

void
AgingModel::onDischarge(Watts power, double dt)
{
    PAD_ASSERT(power >= 0.0 && dt >= 0.0);
    if (power == 0.0 || dt == 0.0)
        return;
    const Joules energy = power * dt;
    // Discharge rate in C (capacity fractions per hour).
    const double rateC = power * 3600.0 / capacity_;
    double stress = 1.0;
    if (rateC > config_.referenceRateC)
        stress = std::pow(rateC / config_.referenceRateC,
                          config_.stressExponent);
    const Joules lifetimeThroughput =
        config_.cycleLife * capacity_;
    cycleWear_ += stress * energy / lifetimeThroughput;
}

void
AgingModel::onElapsed(double dt)
{
    PAD_ASSERT(dt >= 0.0);
    calendarWear_ += dt / (config_.calendarLifeHours * 3600.0);
}

double
AgingModel::capacityFactor() const
{
    return std::max(0.8, 1.0 - 0.2 * std::min(wear(), 1.0));
}

} // namespace pad::battery
