/**
 * @file
 * Lead-acid cycle-aging model.
 *
 * The vDEB controller caps per-unit discharge at P_ideal precisely
 * because "the discharge algorithm should not cause accelerated
 * aging on battery systems" (paper §IV-B.1, citing the 48 A limit of
 * a 2 Ah cell and BAAT [27]). This model quantifies that trade-off
 * so the ablation bench can sweep P_ideal against battery wear.
 *
 * Wear bookkeeping follows the standard throughput method: a cell
 * survives a rated energy throughput of cycleLife x capacity at the
 * reference discharge rate; discharging faster than the reference
 * multiplies the wear by a stress factor that grows with the rate
 * (rate-induced plate corrosion and active-material shedding).
 */

#ifndef PAD_BATTERY_AGING_MODEL_H
#define PAD_BATTERY_AGING_MODEL_H

#include "util/types.h"

namespace pad::battery {

/** Aging parameters. */
struct AgingModelConfig {
    /** Full equivalent cycles at the reference rate before EOL. */
    double cycleLife = 500.0;
    /** Reference discharge rate in capacity fractions per hour (C). */
    double referenceRateC = 0.2;
    /**
     * Stress exponent: wear multiplier = (rate / reference)^exponent
     * for rates above the reference.
     */
    double stressExponent = 0.9;
    /** Calendar life, hours (float aging even when idle). */
    double calendarLifeHours = 5.0 * 365.0 * 24.0;
};

/**
 * Accumulates normalized battery wear; 1.0 = end of life.
 */
class AgingModel
{
  public:
    /**
     * @param config   aging parameters
     * @param capacity rated capacity of the tracked unit, joules
     */
    AgingModel(const AgingModelConfig &config, Joules capacity);

    /**
     * Charge one discharge event against the wear budget.
     *
     * @param power delivered power, watts
     * @param dt    duration, seconds
     */
    void onDischarge(Watts power, double dt);

    /** Charge idle/float time against calendar life. */
    void onElapsed(double dt);

    /** Normalized wear in [0, ...); >= 1 means end of life. */
    double wear() const { return cycleWear_ + calendarWear_; }

    /** Cycle-driven component of the wear. */
    double cycleWear() const { return cycleWear_; }

    /** Calendar component of the wear. */
    double calendarWear() const { return calendarWear_; }

    /** True once the unit has consumed its life budget. */
    bool endOfLife() const { return wear() >= 1.0; }

    /**
     * Capacity retention estimate: linear fade to 80% at EOL (the
     * usual lead-acid replacement criterion).
     */
    double capacityFactor() const;

    /** Static configuration. */
    const AgingModelConfig &config() const { return config_; }

  private:
    AgingModelConfig config_;
    Joules capacity_;
    double cycleWear_ = 0.0;
    double calendarWear_ = 0.0;
};

} // namespace pad::battery

#endif // PAD_BATTERY_AGING_MODEL_H
