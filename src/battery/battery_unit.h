/**
 * @file
 * A deployable distributed-energy-backup (DEB) unit: a KiBaM cell
 * stack plus the protection and telemetry electronics the paper's
 * threat model depends on — low-voltage disconnect (LVD), a maximum
 * safe discharge rate, and SOC reporting.
 *
 * Facebook's Open Rack battery cabinet (paper ref [2]) isolates the
 * battery through an independent LVD when terminal voltage drops to
 * 1.75 V/cell; we model that as an SOC threshold with reconnect
 * hysteresis. The maximum discharge rate mirrors the lead-acid
 * data-sheet bound the paper cites (48 A for a 2 Ah cell, ref [25]).
 */

#ifndef PAD_BATTERY_BATTERY_UNIT_H
#define PAD_BATTERY_BATTERY_UNIT_H

#include <string>

#include "battery/aging_model.h"
#include "battery/kibam.h"
#include "battery/voltage_model.h"
#include "util/types.h"

namespace pad::battery {

/** Static configuration for a DEB unit. */
struct BatteryUnitConfig {
    /** Rated energy capacity. */
    WattHours capacityWh = 72.4;
    /** KiBaM available-well fraction. */
    double kibamC = 0.625;
    /** KiBaM rate constant, 1/s. */
    double kibamK = 4.5e-4;
    /** Maximum safe discharge power. */
    Watts maxDischargePower = 6000.0;
    /** Maximum charge power accepted. */
    Watts maxChargePower = 1500.0;
    /** LVD trips (battery disconnects) at/below this SOC. */
    double lvdDisconnectSoc = 0.125;
    /** LVD reconnects once SOC recovers to this level. */
    double lvdReconnectSoc = 0.25;
    /** Cycle/calendar aging parameters (telemetry). */
    AgingModelConfig aging;
    /** Terminal-voltage model parameters (telemetry). */
    VoltageModelConfig voltage;
};

/**
 * One rack- or server-level battery backup unit.
 */
class BatteryUnit
{
  public:
    /**
     * @param name   telemetry name, e.g. "rack7.deb"
     * @param config static configuration
     */
    BatteryUnit(std::string name, const BatteryUnitConfig &config);

    /**
     * Draw up to @p requested watts for @p dt seconds.
     *
     * The delivery is bounded by the configured maximum discharge
     * rate, the LVD state, and the available-well charge. Tripping
     * the LVD mid-step cuts delivery for the remainder.
     *
     * @return energy actually delivered, joules
     */
    Joules discharge(Watts requested, double dt);

    /**
     * Push up to @p offered watts of charge for @p dt seconds.
     * @return energy actually absorbed, joules
     */
    Joules charge(Watts offered, double dt);

    /**
     * Let the unit idle for @p dt seconds (wells equalize; a tripped
     * LVD may reconnect as the available well recovers).
     */
    void rest(double dt);

    /** State of charge in [0, 1]. */
    double soc() const { return model_.soc(); }

    /** True when the LVD has isolated the battery from the load. */
    bool disconnected() const { return lvdTripped_; }

    /** True when no usable backup energy remains (empty or LVD). */
    bool unavailable() const { return lvdTripped_ || model_.depleted(); }

    /** Largest power deliverable over the next @p dt seconds. */
    Watts availablePower(double dt) const;

    /**
     * Estimated autonomy: how long the unit could sustain @p load
     * before disconnecting, by forward-simulating a copy.
     */
    double estimateAutonomySeconds(Watts load, double resolution = 1.0) const;

    /** Total energy discharged over the unit's lifetime, joules. */
    Joules lifetimeDischarged() const { return totalDischarged_; }

    /** Total energy absorbed while charging, joules. */
    Joules lifetimeCharged() const { return totalCharged_; }

    /** Equivalent full cycles so far. */
    double equivalentFullCycles() const;

    /** Number of LVD disconnect events. */
    int lvdTrips() const { return lvdTrips_; }

    /** Normalized wear from cycling and calendar aging (1 = EOL). */
    double wear() const { return aging_.wear(); }

    /** The full aging bookkeeping. */
    const AgingModel &aging() const { return aging_; }

    /** Terminal pack voltage at the given load, volts. */
    double terminalVoltage(Watts load = 0.0) const;

    /** Per-cell terminal voltage at the given load, volts. */
    double cellVoltage(Watts load = 0.0) const;

    /** Rated capacity in joules. */
    Joules capacity() const { return model_.params().capacity; }

    /** Stored energy in joules. */
    Joules stored() const { return model_.stored(); }

    /** Force a state of charge (testing / scenario setup). */
    void setSoc(double soc);

    /** Telemetry name. */
    const std::string &name() const { return name_; }

    /** Static configuration. */
    const BatteryUnitConfig &config() const { return config_; }

  private:
    void updateLvd();

    std::string name_;
    BatteryUnitConfig config_;
    Kibam model_;
    AgingModel aging_;
    VoltageModel voltage_;
    bool lvdTripped_ = false;
    int lvdTrips_ = 0;
    Joules totalDischarged_ = 0.0;
    Joules totalCharged_ = 0.0;
};

} // namespace pad::battery

#endif // PAD_BATTERY_BATTERY_UNIT_H
