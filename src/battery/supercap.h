/**
 * @file
 * Super-capacitor model for the µDEB spike-shaving device.
 *
 * The paper motivates super-capacitors for µDEB because shaving a
 * transient spike needs very little energy but very high power
 * output, and battery cells age under high current while caps do
 * not. We model a capacitor bank of C farads on a DC bus with a
 * usable voltage window [vMin, vMax]; stored usable energy is
 * E = C/2 (v^2 - vMin^2) and power is limited only by the bank's
 * current rating.
 */

#ifndef PAD_BATTERY_SUPERCAP_H
#define PAD_BATTERY_SUPERCAP_H

#include <string>

#include "util/types.h"

namespace pad::battery {

/** Static configuration for a super-capacitor bank. */
struct SuperCapConfig {
    /** Bank capacitance in farads. */
    double capacitanceF = 2.0;
    /** Fully charged bus voltage, volts. */
    double vMax = 48.0;
    /** Minimum usable voltage (converter cutoff), volts. */
    double vMin = 24.0;
    /** Maximum output power, watts. */
    Watts maxPower = 50000.0;
    /** Round-trip efficiency applied on discharge. */
    double efficiency = 0.95;
};

/**
 * Super-capacitor bank with instantaneous (ORing-style) response.
 */
class SuperCapacitor
{
  public:
    /**
     * @param name   telemetry name, e.g. "rack4.udeb"
     * @param config static configuration
     */
    SuperCapacitor(std::string name, const SuperCapConfig &config);

    /**
     * Draw up to @p requested watts for @p dt seconds.
     * @return energy actually delivered, joules
     */
    Joules discharge(Watts requested, double dt);

    /**
     * Push up to @p offered watts of charge for @p dt seconds.
     * @return energy actually absorbed, joules
     */
    Joules charge(Watts offered, double dt);

    /** Usable stored energy above the cutoff voltage, joules. */
    Joules usableEnergy() const;

    /** Total energy window (full to cutoff), joules. */
    Joules usableCapacity() const;

    /** State of charge over the usable window, in [0, 1]. */
    double soc() const;

    /** Present bus voltage, volts. */
    double voltage() const { return voltage_; }

    /** True when no usable energy remains. */
    bool depleted() const { return usableEnergy() <= 1e-9; }

    /** Maximum power deliverable right now for @p dt seconds. */
    Watts availablePower(double dt) const;

    /** Lifetime energy delivered, joules. */
    Joules lifetimeDischarged() const { return totalDischarged_; }

    /** Number of discharge engagements (spikes shaved). */
    int engagements() const { return engagements_; }

    /** Reset to fully charged. */
    void resetFull() { voltage_ = config_.vMax; }

    /** Set the state of charge over the usable window. */
    void setSoc(double soc);

    /** Telemetry name. */
    const std::string &name() const { return name_; }

    /** Static configuration. */
    const SuperCapConfig &config() const { return config_; }

  private:
    std::string name_;
    SuperCapConfig config_;
    double voltage_;
    Joules totalDischarged_ = 0.0;
    int engagements_ = 0;
};

} // namespace pad::battery

#endif // PAD_BATTERY_SUPERCAP_H
