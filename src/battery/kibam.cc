#include "battery/kibam.h"

#include <algorithm>
#include <cmath>

#include "util/engine_tuning.h"
#include "util/logging.h"

namespace pad::battery {

namespace {

/** Numerical slack for well-boundary comparisons, in joules. */
constexpr Joules kEps = 1e-9;

/**
 * Golden tolerance on the depletion-crossing time, in seconds. A
 * crossing error of t changes the delivered energy by power*t joules;
 * at 1 ns and kilowatt draws that is microjoules, far below anything
 * the figure pipelines print. The Newton solver must agree with the
 * reference bisection to this tolerance or fall back to it.
 */
constexpr double kCrossTolSec = 1e-9;

} // namespace

Kibam::Kibam(const KibamParams &params) : params_(params)
{
    PAD_ASSERT(params_.capacity > 0.0);
    PAD_ASSERT(params_.c > 0.0 && params_.c < 1.0);
    PAD_ASSERT(params_.k > 0.0);
    resetFull();
}

void
Kibam::resetFull()
{
    y1_ = params_.c * params_.capacity;
    y2_ = (1.0 - params_.c) * params_.capacity;
}

void
Kibam::setSoc(double soc)
{
    PAD_ASSERT(soc >= 0.0 && soc <= 1.0);
    y1_ = soc * params_.c * params_.capacity;
    y2_ = soc * (1.0 - params_.c) * params_.capacity;
}

double
Kibam::soc() const
{
    return std::clamp(stored() / params_.capacity, 0.0, 1.0);
}

bool
Kibam::depleted() const
{
    return y1_ <= kEps;
}

bool
Kibam::full() const
{
    return stored() >= params_.capacity - kEps;
}

const KibamCoeffs &
Kibam::coeffsFor(double dt) const
{
    if (coeffs_.dt != dt) {
        // Each stored value is the whole original expression — never
        // a refactored regrouping — so reusing it cannot change a
        // single bit downstream.
        const double k = params_.k;
        const double c = params_.c;
        const double r = std::exp(-k * dt);
        const double kt = k * dt;
        coeffs_.dt = dt;
        coeffs_.r = r;
        coeffs_.kt = kt;
        coeffs_.mspDenom = ((1.0 - r) + c * (kt - 1.0 + r)) / k;
    }
    return coeffs_;
}

void
Kibam::advance(Watts power, double dt)
{
    // Manwell-McGowan closed form for constant power over dt.
    const double k = params_.k;
    const double c = params_.c;
    const double y0 = y1_ + y2_;
    double r, kt;
    if (engineTuning().kibamCoeffCache) {
        const KibamCoeffs &cc = coeffsFor(dt);
        r = cc.r;
        kt = cc.kt;
    } else {
        r = std::exp(-k * dt);
        kt = k * dt;
    }
    const double y1n = y1_ * r + (y0 * k * c - power) * (1.0 - r) / k -
                       power * c * (kt - 1.0 + r) / k;
    const double y2n = y2_ * r + y0 * (1.0 - c) * (1.0 - r) -
                       power * (1.0 - c) * (kt - 1.0 + r) / k;
    y1_ = y1n;
    y2_ = y2n;
}

double
Kibam::availableAfter(Watts power, double t) const
{
    const double k = params_.k;
    const double c = params_.c;
    const double y0 = y1_ + y2_;
    const double r = std::exp(-k * t);
    const double kt = k * t;
    return y1_ * r + (y0 * k * c - power) * (1.0 - r) / k -
           power * c * (kt - 1.0 + r) / k;
}

double
Kibam::crossingTimeBisect(Watts power, double dt) const
{
    // The same 60 dyadic midpoints, the same y1 arithmetic, the same
    // sign test as the historical whole-object probe loop — only the
    // Kibam copies and the (unused) y2 update are gone, so the
    // returned crossing is bit-identical to the original's.
    double lo = 0.0, hi = dt;
    for (int iter = 0; iter < 60; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (availableAfter(power, mid) > 0.0)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

double
Kibam::crossingTimeNewton(Watts power, double dt) const
{
    // y1(t) is smooth and strictly decreasing at the crossing when
    // the draw exceeds the sustainable power, so Newton from the
    // interval midpoint converges quadratically; every evaluation
    // also tightens a [lo, hi] bracket, and an iterate that escapes
    // the bracket is replaced by its midpoint (rtsafe-style guard).
    const double k = params_.k;
    const double c = params_.c;
    const double y0 = y1_ + y2_;
    double lo = 0.0, hi = dt;
    double t = 0.5 * dt;
    for (int iter = 0; iter < 30; ++iter) {
        const double r = std::exp(-k * t);
        const double kt = k * t;
        const double f = y1_ * r +
                         (y0 * k * c - power) * (1.0 - r) / k -
                         power * c * (kt - 1.0 + r) / k;
        if (f > 0.0)
            lo = t;
        else
            hi = t;
        if (hi - lo <= kCrossTolSec)
            return 0.5 * (lo + hi);
        const double df = -k * y1_ * r + (y0 * k * c - power) * r -
                          power * c * (1.0 - r);
        double next =
            df != 0.0 ? t - f / df : 0.5 * (lo + hi);
        if (!(next > lo && next < hi))
            next = 0.5 * (lo + hi);
        t = next;
    }
    // No convergence within budget: yield to the reference bisection
    // so the result can never drift beyond the golden tolerance.
    return crossingTimeBisect(power, dt);
}

void
Kibam::clampWells()
{
    y1_ = std::clamp(y1_, 0.0, params_.c * params_.capacity);
    y2_ = std::clamp(y2_, 0.0, (1.0 - params_.c) * params_.capacity);
}

Watts
Kibam::maxSustainablePower(double dt) const
{
    PAD_ASSERT(dt > 0.0);
    // y1(dt) is affine in the power draw I; solve y1(dt) = 0 for I.
    const double k = params_.k;
    const double c = params_.c;
    const double y0 = y1_ + y2_;
    double r, denom;
    if (engineTuning().kibamCoeffCache) {
        const KibamCoeffs &cc = coeffsFor(dt);
        r = cc.r;
        denom = cc.mspDenom;
    } else {
        r = std::exp(-k * dt);
        const double kt = k * dt;
        denom = ((1.0 - r) + c * (kt - 1.0 + r)) / k;
    }
    const double numer = y1_ * r + y0 * c * (1.0 - r);
    if (denom <= 0.0)
        return 0.0;
    return std::max(0.0, numer / denom);
}

Joules
Kibam::step(Watts power, double dt)
{
    PAD_ASSERT(dt >= 0.0);
    if (dt == 0.0 || power == 0.0) {
        // Even with no load the wells equalize.
        if (dt > 0.0) {
            advance(0.0, dt);
            clampWells();
        }
        return 0.0;
    }

    if (power > 0.0) {
        // Discharge; cap the draw at what the available well can
        // sustain over the full step, then deliver at that rate.
        const Watts sustainable = maxSustainablePower(dt);
        if (power <= sustainable) {
            advance(power, dt);
            clampWells();
            return power * dt;
        }
        if (sustainable <= 0.0) {
            advance(0.0, dt);
            clampWells();
            return 0.0;
        }
        // Deliver the requested power until y1 empties, then nothing.
        // Find the crossing time on the closed form.
        const EngineTuning &tuning = engineTuning();
        double tcross;
        if (tuning.kibamNewtonCrossing) {
            tcross = crossingTimeNewton(power, dt);
        } else if (tuning.kibamScalarCrossing) {
            tcross = crossingTimeBisect(power, dt);
        } else {
            // Historical reference path: bisection probing a full
            // copy of the model each iteration.
            double lo = 0.0, hi = dt;
            Kibam probe = *this;
            for (int iter = 0; iter < 60; ++iter) {
                const double mid = 0.5 * (lo + hi);
                probe = *this;
                probe.advance(power, mid);
                if (probe.y1_ > 0.0)
                    lo = mid;
                else
                    hi = mid;
            }
            tcross = 0.5 * (lo + hi);
        }
        advance(power, tcross);
        clampWells();
        y1_ = 0.0;
        // Remainder of the step: no delivery, wells equalize.
        advance(0.0, dt - tcross);
        clampWells();
        return power * tcross;
    }

    // Charging. Conservation comes first here: the kinetic closed
    // form can push a well past its physical bound and clamping would
    // silently lose charge, so accepted charge is split across the
    // wells (spilling overflow to the other well) and the kinetic
    // equalization is applied separately.
    const Joules room = params_.capacity - stored();
    const Joules accepted = std::min(-power * dt, room);
    if (accepted > 0.0) {
        const Joules y1room = params_.c * params_.capacity - y1_;
        const Joules y2room =
            (1.0 - params_.c) * params_.capacity - y2_;
        Joules toY1 = std::min(accepted * params_.c, y1room);
        Joules toY2 = std::min(accepted - toY1, y2room);
        toY1 += std::min(accepted - toY1 - toY2, y1room - toY1);
        y1_ += toY1;
        y2_ += toY2;
    }
    advance(0.0, dt);
    clampWells();
    return -accepted;
}

} // namespace pad::battery
