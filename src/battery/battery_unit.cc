#include "battery/battery_unit.h"

#include <algorithm>

#include "util/logging.h"

namespace pad::battery {

BatteryUnit::BatteryUnit(std::string name, const BatteryUnitConfig &config)
    : name_(std::move(name)), config_(config),
      model_(KibamParams{wattHoursToJoules(config.capacityWh),
                         config.kibamC, config.kibamK}),
      aging_(config.aging, wattHoursToJoules(config.capacityWh)),
      voltage_(config.voltage)
{
    PAD_ASSERT(config_.capacityWh > 0.0);
    PAD_ASSERT(config_.maxDischargePower > 0.0);
    PAD_ASSERT(config_.lvdDisconnectSoc >= 0.0 &&
               config_.lvdDisconnectSoc < config_.lvdReconnectSoc &&
               config_.lvdReconnectSoc <= 1.0);
}

void
BatteryUnit::updateLvd()
{
    // The LVD senses terminal voltage, which in KiBaM terms tracks
    // the *available-well head* (y1 relative to its full level), not
    // the total stored charge: a hard drain collapses the voltage
    // long before the bound well is empty, and the battery must
    // genuinely recover (recharge or long rest) before reconnecting.
    const double head =
        model_.available() /
        (model_.params().c * model_.params().capacity);
    if (!lvdTripped_) {
        if (head <= config_.lvdDisconnectSoc + 1e-9 ||
            model_.depleted()) {
            lvdTripped_ = true;
            ++lvdTrips_;
        }
    } else if (head >= config_.lvdReconnectSoc) {
        lvdTripped_ = false;
    }
}

Joules
BatteryUnit::discharge(Watts requested, double dt)
{
    PAD_ASSERT(requested >= 0.0 && dt >= 0.0);
    if (dt == 0.0 || requested == 0.0 || lvdTripped_) {
        rest(dt);
        return 0.0;
    }
    const Watts bounded =
        std::min(requested, config_.maxDischargePower);
    // Stop delivering once the LVD threshold is reached: compute the
    // charge above the disconnect floor and cap the step energy at it.
    const Joules floor =
        config_.lvdDisconnectSoc * model_.params().capacity;
    const Joules headroom = std::max(0.0, model_.stored() - floor);
    Joules delivered = 0.0;
    const Joules want = bounded * dt;
    if (want <= headroom) {
        delivered = model_.step(bounded, dt);
    } else {
        // Deliver until the LVD floor, then rest for the remainder.
        const double tcut = headroom / bounded;
        delivered = model_.step(bounded, tcut);
        model_.step(0.0, dt - tcut);
    }
    totalDischarged_ += delivered;
    if (dt > 0.0) {
        aging_.onDischarge(delivered / dt, dt);
        aging_.onElapsed(dt);
    }
    updateLvd();
    return delivered;
}

Joules
BatteryUnit::charge(Watts offered, double dt)
{
    PAD_ASSERT(offered >= 0.0 && dt >= 0.0);
    if (dt == 0.0 || offered == 0.0) {
        rest(dt);
        return 0.0;
    }
    const Watts bounded = std::min(offered, config_.maxChargePower);
    const Joules absorbed = -model_.step(-bounded, dt);
    totalCharged_ += absorbed;
    aging_.onElapsed(dt);
    updateLvd();
    return absorbed;
}

void
BatteryUnit::rest(double dt)
{
    if (dt > 0.0) {
        model_.step(0.0, dt);
        aging_.onElapsed(dt);
        updateLvd();
    }
}

double
BatteryUnit::terminalVoltage(Watts load) const
{
    return voltage_.terminalVoltage(model_, load);
}

double
BatteryUnit::cellVoltage(Watts load) const
{
    return voltage_.cellVoltage(model_, load);
}

Watts
BatteryUnit::availablePower(double dt) const
{
    if (lvdTripped_)
        return 0.0;
    const Watts sustainable = model_.maxSustainablePower(dt);
    // Respect the LVD floor: only the charge above it is usable.
    const Joules floor =
        config_.lvdDisconnectSoc * model_.params().capacity;
    const Joules headroom = std::max(0.0, model_.stored() - floor);
    const Watts byEnergy = headroom / dt;
    return std::min({sustainable, byEnergy, config_.maxDischargePower});
}

double
BatteryUnit::estimateAutonomySeconds(Watts load, double resolution) const
{
    PAD_ASSERT(load > 0.0 && resolution > 0.0);
    BatteryUnit probe = *this;
    double elapsed = 0.0;
    // Bound the search: even a trickle load empties within
    // capacity/load seconds plus slack for well equalization.
    const double bound =
        2.0 * probe.capacity() / std::min(load, config_.maxDischargePower) +
        10.0 * resolution;
    while (elapsed < bound) {
        const Joules got = probe.discharge(load, resolution);
        if (got < 0.5 * load * resolution || probe.unavailable())
            break;
        elapsed += resolution;
    }
    return elapsed;
}

double
BatteryUnit::equivalentFullCycles() const
{
    return totalDischarged_ / model_.params().capacity;
}

void
BatteryUnit::setSoc(double soc)
{
    model_.setSoc(soc);
    lvdTripped_ = false;
    updateLvd();
}

} // namespace pad::battery
