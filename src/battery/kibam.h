/**
 * @file
 * Kinetic Battery Model (KiBaM) after Manwell & McGowan, the model
 * the paper uses for its charge/discharge logs (ref [32]).
 *
 * The battery charge is split across two wells: an *available* well
 * (fraction c of capacity) that supplies the load directly, and a
 * *bound* well (fraction 1-c) that trickles charge into the available
 * well at rate constant k. Sustained high draw depletes the available
 * well faster than the bound well can refill it, reproducing the
 * rate-capacity effect and post-load recovery of real lead-acid
 * batteries.
 *
 * Charge is tracked in joules; "current" is electrical power in watts
 * (terminal voltage is folded into the units, standard practice in
 * datacenter battery studies).
 */

#ifndef PAD_BATTERY_KIBAM_H
#define PAD_BATTERY_KIBAM_H

#include "util/types.h"

namespace pad::battery {

/** Static KiBaM parameters. */
struct KibamParams {
    /** Total charge capacity in joules. */
    Joules capacity = 0.0;
    /** Fraction of capacity held in the available well (0 < c < 1). */
    double c = 0.625;
    /** Well equalization rate constant in 1/s. */
    double k = 4.5e-4;
};

/**
 * Two-well kinetic battery state with an exact closed-form update
 * for piecewise-constant power.
 */
class Kibam
{
  public:
    /** Construct fully charged. */
    explicit Kibam(const KibamParams &params);

    /**
     * Advance the model by @p dt seconds under constant power draw
     * @p power (positive = discharge, negative = charge).
     *
     * The draw is truncated when the available well empties (or
     * fills, when charging) part-way through the step.
     *
     * @return the energy actually delivered (>= 0 when discharging)
     *         or absorbed (<= 0 when charging) in joules
     */
    Joules step(Watts power, double dt);

    /**
     * Largest constant power the battery can sustain for the whole of
     * the next @p dt seconds without emptying the available well.
     */
    Watts maxSustainablePower(double dt) const;

    /** State of charge: total stored charge / capacity, in [0,1]. */
    double soc() const;

    /** Charge in the available well, joules. */
    Joules available() const { return y1_; }

    /** Charge in the bound well, joules. */
    Joules bound() const { return y2_; }

    /** Total stored charge, joules. */
    Joules stored() const { return y1_ + y2_; }

    /** True when the available well is (numerically) empty. */
    bool depleted() const;

    /** True when the battery is (numerically) full. */
    bool full() const;

    /** Reset to fully charged. */
    void resetFull();

    /** Set the state of charge directly (wells at equal head). */
    void setSoc(double soc);

    /** Static parameters. */
    const KibamParams &params() const { return params_; }

  private:
    /** Advance wells by dt at constant power, no boundary handling. */
    void advance(Watts power, double dt);

    /** Clamp wells into their physical ranges. */
    void clampWells();

    KibamParams params_;
    Joules y1_; ///< available well charge
    Joules y2_; ///< bound well charge
};

} // namespace pad::battery

#endif // PAD_BATTERY_KIBAM_H
