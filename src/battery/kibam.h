/**
 * @file
 * Kinetic Battery Model (KiBaM) after Manwell & McGowan, the model
 * the paper uses for its charge/discharge logs (ref [32]).
 *
 * The battery charge is split across two wells: an *available* well
 * (fraction c of capacity) that supplies the load directly, and a
 * *bound* well (fraction 1-c) that trickles charge into the available
 * well at rate constant k. Sustained high draw depletes the available
 * well faster than the bound well can refill it, reproducing the
 * rate-capacity effect and post-load recovery of real lead-acid
 * batteries.
 *
 * Charge is tracked in joules; "current" is electrical power in watts
 * (terminal voltage is folded into the units, standard practice in
 * datacenter battery studies).
 */

#ifndef PAD_BATTERY_KIBAM_H
#define PAD_BATTERY_KIBAM_H

#include "util/types.h"

namespace pad::battery {

/** Static KiBaM parameters. */
struct KibamParams {
    /** Total charge capacity in joules. */
    Joules capacity = 0.0;
    /** Fraction of capacity held in the available well (0 < c < 1). */
    double c = 0.625;
    /** Well equalization rate constant in 1/s. */
    double k = 4.5e-4;
};

/**
 * Memoized per-dt coefficients of the Manwell-McGowan closed form.
 *
 * The simulator advances batteries with a fixed dt per phase (5 min
 * coarse, 100 ms fine), so exp(-k*dt) and the derived sustainable-
 * power denominator are loop invariants. The cache stores exactly
 * the values the uncached formulas produce — the same exp() result
 * and the denominator as one unrefactored expression — so cached and
 * uncached paths are bit-identical.
 */
struct KibamCoeffs {
    /** The dt the coefficients were computed for; <0 = invalid. */
    double dt = -1.0;
    /** exp(-k * dt). */
    double r = 1.0;
    /** k * dt. */
    double kt = 0.0;
    /** ((1 - r) + c * (kt - 1 + r)) / k, the affine-solve denominator. */
    double mspDenom = 0.0;
};

/**
 * Two-well kinetic battery state with an exact closed-form update
 * for piecewise-constant power.
 */
class Kibam
{
  public:
    /** Construct fully charged. */
    explicit Kibam(const KibamParams &params);

    /**
     * Advance the model by @p dt seconds under constant power draw
     * @p power (positive = discharge, negative = charge).
     *
     * The draw is truncated when the available well empties (or
     * fills, when charging) part-way through the step.
     *
     * @return the energy actually delivered (>= 0 when discharging)
     *         or absorbed (<= 0 when charging) in joules
     */
    Joules step(Watts power, double dt);

    /**
     * Largest constant power the battery can sustain for the whole of
     * the next @p dt seconds without emptying the available well.
     */
    Watts maxSustainablePower(double dt) const;

    /** State of charge: total stored charge / capacity, in [0,1]. */
    double soc() const;

    /** Charge in the available well, joules. */
    Joules available() const { return y1_; }

    /** Charge in the bound well, joules. */
    Joules bound() const { return y2_; }

    /** Total stored charge, joules. */
    Joules stored() const { return y1_ + y2_; }

    /** True when the available well is (numerically) empty. */
    bool depleted() const;

    /** True when the battery is (numerically) full. */
    bool full() const;

    /** Reset to fully charged. */
    void resetFull();

    /** Set the state of charge directly (wells at equal head). */
    void setSoc(double soc);

    /** Static parameters. */
    const KibamParams &params() const { return params_; }

  private:
    /** Advance wells by dt at constant power, no boundary handling. */
    void advance(Watts power, double dt);

    /** Clamp wells into their physical ranges. */
    void clampWells();

    /** Coefficients for @p dt, recomputed only when dt changes. */
    const KibamCoeffs &coeffsFor(double dt) const;

    /**
     * Available-well charge after drawing @p power for @p t seconds
     * from the current state, without mutating it. The expression is
     * verbatim the y1 line of advance(), so a decision taken on its
     * sign matches one taken through a whole-object probe bit for bit.
     */
    double availableAfter(Watts power, double t) const;

    /** Depletion crossing by 60-step dyadic bisection (copy-free). */
    double crossingTimeBisect(Watts power, double dt) const;

    /**
     * Depletion crossing by Newton with a bisection guard; falls back
     * to crossingTimeBisect() when the bracket has not collapsed to
     * the golden tolerance within the iteration budget.
     */
    double crossingTimeNewton(Watts power, double dt) const;

    KibamParams params_;
    Joules y1_; ///< available well charge
    Joules y2_; ///< bound well charge
    mutable KibamCoeffs coeffs_; ///< per-dt closed-form cache
};

} // namespace pad::battery

#endif // PAD_BATTERY_KIBAM_H
