#include "battery/voltage_model.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace pad::battery {

VoltageModel::VoltageModel(const VoltageModelConfig &config)
    : config_(config)
{
    PAD_ASSERT(config_.cellsInSeries >= 1);
    PAD_ASSERT(config_.vCellFull > config_.vCellEmpty);
    PAD_ASSERT(config_.internalResistanceOhm >= 0.0);
    PAD_ASSERT(config_.nominalVoltage > 0.0);
}

double
VoltageModel::headFraction(const Kibam &state)
{
    const double full =
        state.params().c * state.params().capacity;
    if (full <= 0.0)
        return 0.0;
    return std::clamp(state.available() / full, 0.0, 1.0);
}

double
VoltageModel::openCircuitVoltage(const Kibam &state) const
{
    const double perCell =
        config_.vCellEmpty +
        (config_.vCellFull - config_.vCellEmpty) * headFraction(state);
    return perCell * config_.cellsInSeries;
}

double
VoltageModel::terminalVoltage(const Kibam &state, Watts load) const
{
    PAD_ASSERT(load >= 0.0);
    const double voc = openCircuitVoltage(state);
    const double current = load / config_.nominalVoltage;
    return voc - current * config_.internalResistanceOhm;
}

double
VoltageModel::cellVoltage(const Kibam &state, Watts load) const
{
    return terminalVoltage(state, load) / config_.cellsInSeries;
}

Watts
VoltageModel::powerAtCellCutoff(const Kibam &state,
                                double vCellCutoff) const
{
    // Solve V_oc - (P / V_nom) R = cutoff x cells for P.
    const double voc = openCircuitVoltage(state);
    const double vCut = vCellCutoff * config_.cellsInSeries;
    if (config_.internalResistanceOhm <= 0.0)
        return voc > vCut ? 1e12 : 0.0;
    const Watts p = (voc - vCut) * config_.nominalVoltage /
                    config_.internalResistanceOhm;
    return std::max(0.0, p);
}

} // namespace pad::battery
