/**
 * @file
 * Deterministic random number generation for reproducible simulation.
 *
 * Every stochastic component takes an explicit generator (or a seed)
 * so that experiments are bit-for-bit repeatable and property tests
 * can sweep seeds. Three engines are provided behind one seam:
 *
 *  - std::mt19937_64 — the historical engine; `pad::Rng` remains a
 *    mixin over it and is byte-identical to the pre-seam wrapper.
 *  - SplitMix64 / Xoshiro256pp — small fast sequential engines
 *    (Blackman & Vigna), used to seed and to cheaply fork streams.
 *  - CounterRng — a splittable *counter-based* engine: output n is a
 *    pure hash of (key, n), so any shard or time slice can seek its
 *    stream in O(1) instead of drawing sequentially.
 *
 * ## Split/seek stream contract (CounterRng)
 *
 * A CounterRng is the pair (key, counter). Draw n of stream `key` is
 *
 *     out(key, n) = splitmix64(key ^ n)
 *
 * which gives three properties the engine backends rely on:
 *
 *  1. **O(1) seek**: `seek(n)` just sets the counter; a stream
 *     positioned at n and a stream that drew n values sequentially
 *     produce identical output from there on (bit-identical — there
 *     is no hidden state beyond the counter).
 *  2. **Splitting**: `split(lane)` derives a child stream whose key
 *     is re-randomized through the same avalanche hash, so sibling
 *     lanes are statistically independent of each other and of the
 *     parent. Splitting never advances the parent's counter.
 *  3. **Layout independence**: because output depends only on
 *     (key, n), work sharded across threads draws the same values as
 *     a serial walk — the foundation of the SoA backend's
 *     sharded-vs-serial bit-identity guarantee.
 *
 * The per-(machine, second) workload jitter has always been the hash
 * splitmix64((machine << 40) ^ second); Workload::jitterAt now
 * delegates to CounterRng with key = machine << 40 and counter =
 * second, bit-identical to the historical file-local hash.
 */

#ifndef PAD_UTIL_RANDOM_H
#define PAD_UTIL_RANDOM_H

#include <cstdint>
#include <limits>
#include <random>

namespace pad {

/** The golden-ratio increment used by splitmix64. */
inline constexpr std::uint64_t kSplitMix64Gamma = 0x9e3779b97f4a7c15ULL;

/**
 * Stateless splitmix64 hash (Steele, Lea & Flood): one increment and
 * one avalanche round. Hashing x equals advancing a SplitMix64
 * engine whose state is x by one step.
 */
inline std::uint64_t
splitmix64(std::uint64_t x)
{
    x += kSplitMix64Gamma;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Map a 64-bit word to a double in [0, 1) (53-bit mantissa). */
inline double
toUnitDouble(std::uint64_t h)
{
    return static_cast<double>(h >> 11) /
           static_cast<double>(1ULL << 53);
}

/** Map a 64-bit word to a double in [-1, 1]. */
inline double
toSignedUnitDouble(std::uint64_t h)
{
    return toUnitDouble(h) * 2.0 - 1.0;
}

/**
 * SplitMix64 sequential engine (UniformRandomBitGenerator). Mostly a
 * seeding/forking helper: tiny state, full-period, fast.
 */
class SplitMix64
{
  public:
    using result_type = std::uint64_t;

    explicit SplitMix64(std::uint64_t seed = 0) : state_(seed) {}

    result_type
    operator()()
    {
        state_ += kSplitMix64Gamma;
        std::uint64_t z = state_;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type
    max()
    {
        return std::numeric_limits<result_type>::max();
    }

  private:
    std::uint64_t state_;
};

/**
 * xoshiro256++ sequential engine (Blackman & Vigna 2019), seeded via
 * SplitMix64 as the authors recommend. General-purpose 64-bit
 * generator: faster than mt19937_64 with far smaller state.
 */
class Xoshiro256pp
{
  public:
    using result_type = std::uint64_t;

    explicit Xoshiro256pp(std::uint64_t seed = 0)
    {
        SplitMix64 sm(seed);
        for (auto &word : s_)
            word = sm();
    }

    result_type
    operator()()
    {
        const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type
    max()
    {
        return std::numeric_limits<result_type>::max();
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4];
};

/**
 * Splittable counter-based engine: out(n) = splitmix64(key ^ n).
 * See the stream contract in the file header. Also a conforming
 * UniformRandomBitGenerator, so std distributions work on it.
 */
class CounterRng
{
  public:
    using result_type = std::uint64_t;

    /**
     * Open stream @p key at position @p counter. The key is used
     * verbatim (no pre-mixing) so callers with an established hash
     * layout — e.g. the workload's (machine << 40) jitter keys —
     * keep their exact historical output; derive decorrelated keys
     * from small integers with split().
     */
    explicit CounterRng(std::uint64_t key = 0,
                        std::uint64_t counter = 0)
        : key_(key), counter_(counter)
    {}

    /** Draw @p n of this stream without touching the position. */
    std::uint64_t
    at(std::uint64_t n) const
    {
        return splitmix64(key_ ^ n);
    }

    /** Sequential draw: at(counter), then advance the counter. */
    std::uint64_t
    next()
    {
        return at(counter_++);
    }

    result_type operator()() { return next(); }

    /** O(1) jump to position @p n: next() then returns at(n). */
    void seek(std::uint64_t n) { counter_ = n; }

    /** Current stream position. */
    std::uint64_t position() const { return counter_; }

    /** Stream key. */
    std::uint64_t key() const { return key_; }

    /**
     * Derive child stream @p lane. The child key passes through the
     * avalanche hash with a lane-salted gamma so siblings (and the
     * parent) are decorrelated; the parent's position is unchanged.
     */
    CounterRng
    split(std::uint64_t lane) const
    {
        return CounterRng(
            splitmix64(key_ + (lane + 1) * kSplitMix64Gamma));
    }

    /** Draw @p n mapped to [0, 1). */
    double unitAt(std::uint64_t n) const { return toUnitDouble(at(n)); }

    /** Draw @p n mapped to [-1, 1]. */
    double
    signedUnitAt(std::uint64_t n) const
    {
        return toSignedUnitDouble(at(n));
    }

    /** Sequential draw mapped to [0, 1). */
    double nextUnit() { return toUnitDouble(next()); }

    static constexpr result_type min() { return 0; }
    static constexpr result_type
    max()
    {
        return std::numeric_limits<result_type>::max();
    }

  private:
    std::uint64_t key_;
    std::uint64_t counter_;
};

/**
 * Convenience-distribution mixin over any UniformRandomBitGenerator.
 * `pad::Rng` (the mt19937_64 instantiation) keeps the historical
 * wrapper's exact behaviour: same default seed, same fork(), same
 * per-call std distributions.
 */
template <typename Engine>
class BasicRng
{
  public:
    /** Construct with an explicit seed (default fixed for repro). */
    explicit BasicRng(std::uint64_t seed = kSplitMix64Gamma)
        : engine_(seed)
    {}

    /** Derive an independent child stream (for per-component RNGs). */
    BasicRng
    fork()
    {
        return BasicRng(engine_());
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
    }

    /** Normal deviate with the given mean and standard deviation. */
    double
    normal(double mean, double stddev)
    {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /** Exponential deviate with the given rate (1/mean). */
    double
    exponential(double rate)
    {
        return std::exponential_distribution<double>(rate)(engine_);
    }

    /**
     * Bounded Pareto deviate in [lo, hi] with tail index alpha.
     * Used for heavy-tailed task durations and CPU demands.
     */
    double boundedPareto(double alpha, double lo, double hi);

    /** Bernoulli trial with success probability p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Access the raw engine (for std::shuffle etc.). */
    Engine &engine() { return engine_; }

  private:
    Engine engine_;
};

extern template class BasicRng<std::mt19937_64>;
extern template class BasicRng<SplitMix64>;
extern template class BasicRng<Xoshiro256pp>;
extern template class BasicRng<CounterRng>;

/** The historical simulation RNG: distributions over mt19937_64. */
using Rng = BasicRng<std::mt19937_64>;

} // namespace pad

#endif // PAD_UTIL_RANDOM_H
