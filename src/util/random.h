/**
 * @file
 * Deterministic random number generation for reproducible simulation.
 *
 * Every stochastic component takes an explicit Rng (or a seed) so that
 * experiments are bit-for-bit repeatable and property tests can sweep
 * seeds. The generator is a thin wrapper over std::mt19937_64.
 */

#ifndef PAD_UTIL_RANDOM_H
#define PAD_UTIL_RANDOM_H

#include <cstdint>
#include <random>

namespace pad {

/**
 * Seedable pseudo-random source with convenience distributions.
 */
class Rng
{
  public:
    /** Construct with an explicit seed (default fixed for repro). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : engine_(seed)
    {}

    /** Derive an independent child stream (for per-component RNGs). */
    Rng
    fork()
    {
        return Rng(engine_());
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
    }

    /** Normal deviate with the given mean and standard deviation. */
    double
    normal(double mean, double stddev)
    {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /** Exponential deviate with the given rate (1/mean). */
    double
    exponential(double rate)
    {
        return std::exponential_distribution<double>(rate)(engine_);
    }

    /**
     * Bounded Pareto deviate in [lo, hi] with tail index alpha.
     * Used for heavy-tailed task durations and CPU demands.
     */
    double boundedPareto(double alpha, double lo, double hi);

    /** Bernoulli trial with success probability p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Access the raw engine (for std::shuffle etc.). */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace pad

#endif // PAD_UTIL_RANDOM_H
