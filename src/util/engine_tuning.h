/**
 * @file
 * Engine tuning profile: a process-wide set of switches for the
 * simulation hot-path optimizations introduced by the perf work
 * (KiBaM coefficient cache, copy-free depletion crossing, shared
 * power-curve evaluation, per-tick demand cache, scratch-buffer
 * reuse, pooled event allocation).
 *
 * Every switch is value-preserving by construction — with the sole
 * exception of kibamNewtonCrossing, which replaces the dyadic
 * bisection by a Newton solve that agrees only to the golden
 * tolerance — so the Optimized profile (the default) produces
 * bit-identical simulation results to the Baseline profile. The
 * Baseline profile exists so the perfbench harness can measure the
 * pre-optimization engine inside the same binary; engine_parity_test
 * asserts the bit-identity contract.
 *
 * Thread-safety: the tuning block is thread_local, so flipping
 * switches affects only the calling thread. Sweep workers start from
 * the defaults (Optimized) regardless of what the spawning thread
 * set — select engine variants per run through the explicit
 * `engine::BackendKind` field on Experiment/BenchOptions instead.
 *
 * Deprecated: setEngineProfile()/ScopedEngineProfile remain for the
 * perfbench micro-rows and parity tests that measure the scalar
 * tuning switches in isolation, but new code should not mutate the
 * tuning block; prefer the engine::EngineBackend selection API
 * (src/engine/backend.h).
 */

#ifndef PAD_UTIL_ENGINE_TUNING_H
#define PAD_UTIL_ENGINE_TUNING_H

namespace pad {

/** Hot-path optimization switches. Defaults = Optimized profile. */
struct EngineTuning {
    /** Memoize exp(-k*dt) and derived KiBaM terms per dt. */
    bool kibamCoeffCache = true;
    /**
     * Find the depletion crossing with a copy-free scalar y1(t)
     * bisection (same 60 dyadic midpoints and arithmetic as the
     * original whole-object probe loop; bit-identical).
     */
    bool kibamScalarCrossing = true;
    /**
     * Replace the crossing bisection with a guarded Newton solve.
     * Converges in ~6 iterations instead of 60 but lands anywhere
     * within the golden tolerance of the root, so results are only
     * tolerance-identical, not bit-identical. Opt-in; overrides
     * kibamScalarCrossing when set.
     */
    bool kibamNewtonCrossing = false;
    /** Evaluate pow(util, e) once per server for capped/uncapped/executed. */
    bool serverPowerSharedEval = true;
    /** Cache per-machine demand per (trace slot, jitter second). */
    bool tickDemandCache = true;
    /** Reuse persistent scratch buffers across simulation steps. */
    bool stepScratchReuse = true;
    /** Allocate event-queue entries from a free-list arena. */
    bool eventPoolAllocation = true;
};

/** Named tuning presets. */
enum class EngineProfile {
    /** Pre-optimization engine: every switch off. */
    Baseline,
    /** All value-preserving optimizations on (the default). */
    Optimized,
};

/** The calling thread's tuning block (mutable, thread_local). */
EngineTuning &engineTuning();

/**
 * Reset the calling thread's tuning block to a named preset.
 * Deprecated: prefer selecting an engine::BackendKind per run.
 */
void setEngineProfile(EngineProfile profile);

/** Human-readable preset name ("baseline" / "optimized"). */
const char *engineProfileName(EngineProfile profile);

/**
 * RAII preset override for tests and benches: applies a profile on
 * construction and restores the previous tuning block on destruction.
 * Affects the current thread only. Deprecated for new code — select
 * engine variants via engine::BackendKind instead.
 */
class ScopedEngineProfile
{
  public:
    explicit ScopedEngineProfile(EngineProfile profile)
        : saved_(engineTuning())
    {
        setEngineProfile(profile);
    }

    ~ScopedEngineProfile() { engineTuning() = saved_; }

    ScopedEngineProfile(const ScopedEngineProfile &) = delete;
    ScopedEngineProfile &operator=(const ScopedEngineProfile &) = delete;

  private:
    EngineTuning saved_;
};

} // namespace pad

#endif // PAD_UTIL_ENGINE_TUNING_H
