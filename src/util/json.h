/**
 * @file
 * Minimal JSON parser for tooling and tests.
 *
 * The observability layer *writes* JSON (traces, stats exports, run
 * manifests); this parser closes the loop so tests and CLI tooling
 * can validate that those artifacts really are well-formed and carry
 * the required fields, without any external dependency. It is a
 * strict RFC-8259-style recursive-descent parser over an in-memory
 * string — fine for test fixtures and manifests, not meant for
 * gigabyte trace files.
 */

#ifndef PAD_UTIL_JSON_H
#define PAD_UTIL_JSON_H

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pad {

/** A parsed JSON document node. */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    /** Members in document order (duplicate keys keep both). */
    std::vector<std::pair<std::string, JsonValue>> members;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** First member with key @p k, or nullptr. Object nodes only. */
    const JsonValue *find(std::string_view k) const;

    /** True when an object node has a member named @p k. */
    bool contains(std::string_view k) const { return find(k) != nullptr; }

    /** Array length / object member count / 0 for scalars. */
    std::size_t size() const;
};

/**
 * Parse a complete JSON document.
 *
 * @param text  the document; trailing garbage is an error
 * @param error receives a human-readable message on failure
 * @return the root value, or nullopt on a syntax error
 */
std::optional<JsonValue> parseJson(std::string_view text,
                                   std::string *error = nullptr);

} // namespace pad

#endif // PAD_UTIL_JSON_H
