#include "util/json_writer.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "util/logging.h"

namespace pad {

JsonWriter::JsonWriter(std::ostream &os, int indent)
    : os_(os), indent_(indent)
{
    PAD_ASSERT(indent >= 0);
}

std::string
JsonWriter::escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
JsonWriter::formatDouble(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    for (int precision = 1; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

void
JsonWriter::newline()
{
    if (indent_ == 0)
        return;
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i)
        for (int s = 0; s < indent_; ++s)
            os_ << ' ';
}

void
JsonWriter::beforeValue()
{
    if (stack_.empty()) {
        PAD_ASSERT(!keyPending_);
        return;
    }
    Level &top = stack_.back();
    if (top.object) {
        // Inside an object a bare value is only legal after key().
        PAD_ASSERT(keyPending_,
                   "JSON object member written without a key");
        keyPending_ = false;
        return;
    }
    if (top.count++ > 0)
        os_ << ',';
    newline();
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    PAD_ASSERT(!stack_.empty() && stack_.back().object,
               "JSON key outside an object");
    PAD_ASSERT(!keyPending_, "two JSON keys in a row");
    if (stack_.back().count++ > 0)
        os_ << ',';
    newline();
    os_ << '"' << escape(k) << '"' << ':';
    if (indent_ > 0)
        os_ << ' ';
    keyPending_ = true;
    return *this;
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    os_ << '{';
    stack_.push_back(Level{true});
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    PAD_ASSERT(!stack_.empty() && stack_.back().object && !keyPending_);
    const bool empty = stack_.back().count == 0;
    stack_.pop_back();
    if (!empty)
        newline();
    os_ << '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    os_ << '[';
    stack_.push_back(Level{false});
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    PAD_ASSERT(!stack_.empty() && !stack_.back().object);
    const bool empty = stack_.back().count == 0;
    stack_.pop_back();
    if (!empty)
        newline();
    os_ << ']';
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    beforeValue();
    os_ << '"' << escape(v) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string_view(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    beforeValue();
    os_ << formatDouble(v);
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    beforeValue();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    beforeValue();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    return value(static_cast<std::int64_t>(v));
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeValue();
    os_ << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    beforeValue();
    os_ << "null";
    return *this;
}

JsonWriter &
JsonWriter::rawValue(std::string_view json)
{
    beforeValue();
    os_ << json;
    return *this;
}

} // namespace pad
