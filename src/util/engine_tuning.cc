#include "util/engine_tuning.h"

namespace pad {

EngineTuning &
engineTuning()
{
    thread_local EngineTuning tuning; // defaults == Optimized
    return tuning;
}

void
setEngineProfile(EngineProfile profile)
{
    EngineTuning &t = engineTuning();
    if (profile == EngineProfile::Baseline) {
        t.kibamCoeffCache = false;
        t.kibamScalarCrossing = false;
        t.kibamNewtonCrossing = false;
        t.serverPowerSharedEval = false;
        t.tickDemandCache = false;
        t.stepScratchReuse = false;
        t.eventPoolAllocation = false;
    } else {
        t = EngineTuning{};
    }
}

const char *
engineProfileName(EngineProfile profile)
{
    return profile == EngineProfile::Baseline ? "baseline" : "optimized";
}

} // namespace pad
