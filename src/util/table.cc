#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace pad {

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

void
TextTable::addRow(const std::string &label, const std::vector<double> &vals,
                  int precision)
{
    std::vector<std::string> row;
    row.reserve(vals.size() + 1);
    row.push_back(label);
    for (double v : vals)
        row.push_back(formatFixed(v, precision));
    rows_.push_back(std::move(row));
}

void
TextTable::print(std::ostream &os) const
{
    std::size_t cols = header_.size();
    for (const auto &r : rows_)
        cols = std::max(cols, r.size());

    std::vector<std::size_t> width(cols, 0);
    auto measure = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i)
            width[i] = std::max(width[i], row[i].size());
    };
    if (!header_.empty())
        measure(header_);
    for (const auto &r : rows_)
        measure(r);

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < cols; ++i) {
            const std::string cell = i < row.size() ? row[i] : "";
            os << std::left << std::setw(static_cast<int>(width[i]) + 2)
               << cell;
        }
        os << '\n';
    };

    if (!title_.empty())
        os << title_ << '\n';
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t w : width)
            total += w + 2;
        os << std::string(total, '-') << '\n';
    }
    for (const auto &r : rows_)
        emit(r);
    os.flush();
}

std::string
formatFixed(double v, int precision)
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(precision) << v;
    return out.str();
}

std::string
formatPercent(double ratio, int precision)
{
    return formatFixed(ratio * 100.0, precision) + "%";
}

} // namespace pad
