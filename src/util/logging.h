/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic()  - an internal invariant was violated; aborts.
 * fatal()  - the user asked for something impossible; exits cleanly.
 * warn()   - something is off but the simulation can continue.
 * inform() - plain status output.
 *
 * All of these format with std::format-like semantics implemented via
 * a tiny "{}" substitution helper so the library has no dependency on
 * libfmt and works with partial std::format support.
 */

#ifndef PAD_UTIL_LOGGING_H
#define PAD_UTIL_LOGGING_H

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace pad {

/** Verbosity levels for runtime log filtering. */
enum class LogLevel { Silent, Error, Warn, Info, Debug };

/** Set the global log verbosity; messages above it are suppressed. */
void setLogLevel(LogLevel level);

/** Current global log verbosity. */
LogLevel logLevel();

/** Parse a level name ("silent".."debug", case-insensitive). */
std::optional<LogLevel> logLevelFromName(std::string_view name);

/** Canonical lower-case name for @p level. */
std::string_view logLevelName(LogLevel level);

/**
 * Apply the PAD_LOG_LEVEL environment variable, if set, to the global
 * log level. Reads the environment exactly once per process; later
 * calls are no-ops, so CLI flags applied afterwards always win.
 */
void initLoggingFromEnvironment();

/**
 * RAII tag marking this thread's log output as belonging to sweep job
 * @p job: messages gain a "[job N] " prefix so interleaved worker
 * lines stay attributable. Nestable; restores the previous tag.
 */
class ScopedLogJob
{
  public:
    explicit ScopedLogJob(int job);
    ~ScopedLogJob();

    ScopedLogJob(const ScopedLogJob &) = delete;
    ScopedLogJob &operator=(const ScopedLogJob &) = delete;

  private:
    int prev_;
};

namespace detail {

/** Warn (once per process) that a format string ran out of args. */
void missingFormatArg(std::string_view fmt);

/**
 * Render "{}" placeholders in @p fmt with the stringified @p args.
 * "{{" and "}}" escape to literal braces. If the format has more
 * placeholders than args, the placeholder is kept verbatim and a
 * one-time warning flags the format bug.
 */
template <typename... Args>
std::string
formatMessage(std::string_view fmt, const Args &...args)
{
    std::ostringstream out;
    std::string rendered[sizeof...(Args) > 0 ? sizeof...(Args) : 1];
    std::size_t n = 0;
    ((void)((
         [&] {
             std::ostringstream one;
             one << args;
             rendered[n++] = one.str();
         }())),
     ...);

    std::size_t arg = 0;
    bool starved = false;
    for (std::size_t i = 0; i < fmt.size(); ++i) {
        if (i + 1 < fmt.size() && fmt[i] == '{' && fmt[i + 1] == '{') {
            out << '{';
            ++i;
        } else if (i + 1 < fmt.size() && fmt[i] == '}' &&
                   fmt[i + 1] == '}') {
            out << '}';
            ++i;
        } else if (i + 1 < fmt.size() && fmt[i] == '{' &&
                   fmt[i + 1] == '}') {
            if (arg < n) {
                out << rendered[arg++];
            } else {
                out << "{}";
                starved = true;
            }
            ++i;
        } else {
            out << fmt[i];
        }
    }
    if (starved)
        missingFormatArg(fmt);
    return out.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

} // namespace detail

/**
 * Report an internal simulator bug and abort. Use only for conditions
 * that can never happen regardless of user input.
 */
template <typename... Args>
[[noreturn]] void
panicAt(const char *file, int line, std::string_view fmt,
        const Args &...args)
{
    detail::panicImpl(file, line, detail::formatMessage(fmt, args...));
}

/**
 * Report an unrecoverable user/configuration error and exit(1).
 */
template <typename... Args>
[[noreturn]] void
fatalAt(const char *file, int line, std::string_view fmt,
        const Args &...args)
{
    detail::fatalImpl(file, line, detail::formatMessage(fmt, args...));
}

/** Emit a warning about questionable but survivable behaviour. */
template <typename... Args>
void
warn(std::string_view fmt, const Args &...args)
{
    if (logLevel() >= LogLevel::Warn)
        detail::warnImpl(detail::formatMessage(fmt, args...));
}

/** Emit an informational status message. */
template <typename... Args>
void
inform(std::string_view fmt, const Args &...args)
{
    if (logLevel() >= LogLevel::Info)
        detail::informImpl(detail::formatMessage(fmt, args...));
}

/** Emit a debug-level trace message. */
template <typename... Args>
void
debugLog(std::string_view fmt, const Args &...args)
{
    if (logLevel() >= LogLevel::Debug)
        detail::debugImpl(detail::formatMessage(fmt, args...));
}

} // namespace pad

#define PAD_PANIC(...) ::pad::panicAt(__FILE__, __LINE__, __VA_ARGS__)
#define PAD_FATAL(...) ::pad::fatalAt(__FILE__, __LINE__, __VA_ARGS__)

/** Assert a simulator invariant; violations are bugs, so panic. */
#define PAD_ASSERT(cond, ...)                                             \
    do {                                                                  \
        if (!(cond))                                                      \
            ::pad::panicAt(__FILE__, __LINE__,                            \
                           "assertion failed: " #cond " " __VA_ARGS__);   \
    } while (0)

#endif // PAD_UTIL_LOGGING_H
