/**
 * @file
 * Fundamental scalar types and unit helpers shared across the PAD
 * simulator. Physical quantities are carried as doubles in SI-ish
 * units (watts, watt-hours, joules, seconds); simulation time is an
 * integer tick count at millisecond resolution.
 */

#ifndef PAD_UTIL_TYPES_H
#define PAD_UTIL_TYPES_H

#include <cstdint>

namespace pad {

/** Simulation time in ticks. One tick is one millisecond. */
using Tick = std::int64_t;

/** Number of ticks in one second. */
constexpr Tick kTicksPerSecond = 1000;

/** Number of ticks in one minute. */
constexpr Tick kTicksPerMinute = 60 * kTicksPerSecond;

/** Number of ticks in one hour. */
constexpr Tick kTicksPerHour = 60 * kTicksPerMinute;

/** Number of ticks in one day. */
constexpr Tick kTicksPerDay = 24 * kTicksPerHour;

/** Sentinel for "no scheduled time". */
constexpr Tick kTickNever = -1;

/** Electrical power in watts. */
using Watts = double;

/** Stored energy in watt-hours. */
using WattHours = double;

/** Stored energy in joules. */
using Joules = double;

/** Convert a tick count to seconds. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / kTicksPerSecond;
}

/** Convert seconds to the nearest tick count. */
constexpr Tick
secondsToTicks(double s)
{
    return static_cast<Tick>(s * kTicksPerSecond + (s >= 0 ? 0.5 : -0.5));
}

/** Convert watt-hours to joules. */
constexpr Joules
wattHoursToJoules(WattHours wh)
{
    return wh * 3600.0;
}

/** Convert joules to watt-hours. */
constexpr WattHours
joulesToWattHours(Joules j)
{
    return j / 3600.0;
}

} // namespace pad

#endif // PAD_UTIL_TYPES_H
