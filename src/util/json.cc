#include "util/json.h"

#include <cctype>
#include <cstdlib>

namespace pad {

const JsonValue *
JsonValue::find(std::string_view k) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[key, value] : members)
        if (key == k)
            return &value;
    return nullptr;
}

std::size_t
JsonValue::size() const
{
    switch (kind) {
      case Kind::Array:
        return array.size();
      case Kind::Object:
        return members.size();
      default:
        return 0;
    }
}

namespace {

class Parser
{
  public:
    Parser(std::string_view text, std::string *error)
        : text_(text), error_(error)
    {
    }

    std::optional<JsonValue>
    parse()
    {
        skipWs();
        JsonValue root;
        if (!parseValue(root))
            return std::nullopt;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after JSON document");
        return root;
    }

  private:
    std::optional<JsonValue>
    fail(const std::string &msg)
    {
        if (error_ && error_->empty())
            *error_ = msg + " at offset " + std::to_string(pos_);
        return std::nullopt;
    }

    bool
    failValue(const std::string &msg)
    {
        fail(msg);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (++depth_ > kMaxDepth)
            return failValue("JSON nesting too deep");
        bool ok = parseValueInner(out);
        --depth_;
        return ok;
    }

    bool
    parseValueInner(JsonValue &out)
    {
        if (pos_ >= text_.size())
            return failValue("unexpected end of input");
        const char c = text_[pos_];
        switch (c) {
          case '{':
            return parseObject(out);
          case '[':
            return parseArray(out);
          case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.str);
          case 't':
            if (!literal("true"))
                return failValue("invalid literal");
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return true;
          case 'f':
            if (!literal("false"))
                return failValue("invalid literal");
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return true;
          case 'n':
            if (!literal("null"))
                return failValue("invalid literal");
            out.kind = JsonValue::Kind::Null;
            return true;
          default:
            return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return failValue("expected object key");
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return failValue("expected ':' after object key");
            ++pos_;
            skipWs();
            JsonValue member;
            if (!parseValue(member))
                return false;
            out.members.emplace_back(std::move(key), std::move(member));
            skipWs();
            if (pos_ >= text_.size())
                return failValue("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return failValue("expected ',' or '}' in object");
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            JsonValue element;
            if (!parseValue(element))
                return false;
            out.array.push_back(std::move(element));
            skipWs();
            if (pos_ >= text_.size())
                return failValue("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return failValue("expected ',' or ']' in array");
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return failValue("raw control character in string");
            if (c != '\\') {
                out += c;
                ++pos_;
                continue;
            }
            if (++pos_ >= text_.size())
                return failValue("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                  unsigned code = 0;
                  for (int i = 0; i < 4; ++i) {
                      if (pos_ >= text_.size() ||
                          !std::isxdigit(static_cast<unsigned char>(
                              text_[pos_])))
                          return failValue("invalid \\u escape");
                      const char h = text_[pos_++];
                      code = code * 16 +
                             static_cast<unsigned>(
                                 h <= '9'   ? h - '0'
                                 : h <= 'F' ? h - 'A' + 10
                                            : h - 'a' + 10);
                  }
                  // UTF-8 encode the BMP code point; surrogate pairs
                  // are passed through as two 3-byte sequences, which
                  // is lossy but adequate for validation tooling.
                  if (code < 0x80) {
                      out += static_cast<char>(code);
                  } else if (code < 0x800) {
                      out += static_cast<char>(0xC0 | (code >> 6));
                      out += static_cast<char>(0x80 | (code & 0x3F));
                  } else {
                      out += static_cast<char>(0xE0 | (code >> 12));
                      out += static_cast<char>(0x80 |
                                               ((code >> 6) & 0x3F));
                      out += static_cast<char>(0x80 | (code & 0x3F));
                  }
                  break;
              }
              default:
                return failValue("unknown escape character");
            }
        }
        return failValue("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        if (pos_ >= text_.size() ||
            !std::isdigit(static_cast<unsigned char>(text_[pos_])))
            return failValue("invalid number");
        // Leading zero may not be followed by more digits.
        if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
            std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))
            return failValue("leading zero in number");
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_])))
                return failValue("digit required after decimal point");
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_])))
                return failValue("digit required in exponent");
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        const std::string token(text_.substr(start, pos_ - start));
        out.kind = JsonValue::Kind::Number;
        out.number = std::strtod(token.c_str(), nullptr);
        return true;
    }

    static constexpr int kMaxDepth = 200;

    std::string_view text_;
    std::string *error_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

std::optional<JsonValue>
parseJson(std::string_view text, std::string *error)
{
    if (error)
        error->clear();
    return Parser(text, error).parse();
}

} // namespace pad
