#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace pad {

void
RunningStats::add(double x)
{
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double nt = na + nb;
    mean_ += delta * nb / nt;
    m2_ += other.m2_ + delta * delta * na * nb / nt;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
RunningStats::reset()
{
    *this = RunningStats();
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    PAD_ASSERT(p >= 0.0 && p <= 100.0);
    std::sort(values.begin(), values.end());
    if (values.size() == 1)
        return values.front();
    const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    PAD_ASSERT(hi > lo && bins >= 1);
}

void
Histogram::add(double x)
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width);
    idx = std::clamp<std::ptrdiff_t>(
        idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

double
Histogram::binLeft(std::size_t i) const
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + width * static_cast<double>(i);
}

} // namespace pad
