/**
 * @file
 * Small statistics helpers used throughout the evaluation harness:
 * streaming mean/variance (Welford), min/max tracking, percentiles,
 * and a fixed-width histogram.
 */

#ifndef PAD_UTIL_STATS_H
#define PAD_UTIL_STATS_H

#include <cstddef>
#include <limits>
#include <vector>

namespace pad {

/**
 * Streaming accumulator for count / mean / variance / extrema using
 * Welford's numerically stable recurrence.
 */
class RunningStats
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStats &other);

    /** Reset to the empty state. */
    void reset();

    /** Number of samples folded in so far. */
    std::size_t count() const { return n_; }

    /** Sample mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Population variance (0 with fewer than 2 samples). */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest sample seen (+inf when empty). */
    double min() const { return min_; }

    /** Largest sample seen (-inf when empty). */
    double max() const { return max_; }

    /** Sum of all samples. */
    double sum() const { return mean_ * static_cast<double>(n_); }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Linear-interpolated percentile of a sample vector.
 *
 * @param values samples (copied and sorted internally)
 * @param p      percentile in [0, 100]
 * @return the interpolated percentile, or 0 for an empty input
 */
double percentile(std::vector<double> values, double p);

/**
 * Fixed-width histogram over [lo, hi); samples outside the range are
 * clamped into the first/last bin.
 */
class Histogram
{
  public:
    /**
     * @param lo   inclusive lower bound of the tracked range
     * @param hi   exclusive upper bound of the tracked range
     * @param bins number of equal-width bins (>= 1)
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Record one sample. */
    void add(double x);

    /** Count in bin @p i. */
    std::size_t binCount(std::size_t i) const { return counts_.at(i); }

    /** Left edge of bin @p i. */
    double binLeft(std::size_t i) const;

    /** Number of bins. */
    std::size_t bins() const { return counts_.size(); }

    /** Total samples recorded. */
    std::size_t total() const { return total_; }

  private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

} // namespace pad

#endif // PAD_UTIL_STATS_H
