/**
 * @file
 * Minimal CSV reading and writing. Used by the trace module to parse
 * Google-cluster-style task event files and by the bench harness to
 * dump figure data series.
 *
 * The dialect is deliberately simple: comma separated, optional
 * double-quote quoting with doubled-quote escapes, one record per
 * line, no embedded newlines inside quoted fields.
 */

#ifndef PAD_UTIL_CSV_H
#define PAD_UTIL_CSV_H

#include <fstream>
#include <string>
#include <vector>

namespace pad {

/** Split one CSV record into fields. */
std::vector<std::string> parseCsvLine(const std::string &line);

/** Join fields into one CSV record, quoting where needed. */
std::string formatCsvLine(const std::vector<std::string> &fields);

/**
 * Streaming CSV reader over a file.
 */
class CsvReader
{
  public:
    /** Open @p path; fatal() if the file cannot be opened. */
    explicit CsvReader(const std::string &path);

    /**
     * Read the next record.
     * @param fields receives the parsed fields
     * @retval true a record was read; false at end of file
     */
    bool next(std::vector<std::string> &fields);

    /** Number of records returned so far. */
    std::size_t recordsRead() const { return records_; }

  private:
    std::ifstream in_;
    std::size_t records_ = 0;
};

/**
 * Streaming CSV writer; creates/truncates the target file.
 */
class CsvWriter
{
  public:
    /** Open @p path for writing; fatal() on failure. */
    explicit CsvWriter(const std::string &path);

    /** Append one record. */
    void write(const std::vector<std::string> &fields);

    /** Convenience: append a record of doubles. */
    void writeNumbers(const std::vector<double> &values);

    /** Flush buffered output to disk. */
    void flush() { out_.flush(); }

  private:
    std::ofstream out_;
};

} // namespace pad

#endif // PAD_UTIL_CSV_H
