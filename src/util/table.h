/**
 * @file
 * Console table printer for the bench harness. Renders the rows and
 * columns of each reproduced paper table/figure in aligned plain text
 * so bench output can be diffed against EXPERIMENTS.md.
 */

#ifndef PAD_UTIL_TABLE_H
#define PAD_UTIL_TABLE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace pad {

/**
 * Accumulates string cells and pretty-prints them with column
 * alignment and an optional title/separator.
 */
class TextTable
{
  public:
    /** @param title heading printed above the table (may be empty) */
    explicit TextTable(std::string title = {});

    /** Set the column headers. */
    void setHeader(std::vector<std::string> header);

    /** Append one row of cells. */
    void addRow(std::vector<std::string> row);

    /** Append a row of mixed label + numeric cells. */
    void addRow(const std::string &label, const std::vector<double> &vals,
                int precision = 2);

    /** Render the table to @p os. */
    void print(std::ostream &os) const;

    /** Number of data rows. */
    std::size_t rows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision. */
std::string formatFixed(double v, int precision = 2);

/** Format a ratio as a percentage string, e.g. 0.431 -> "43.1%". */
std::string formatPercent(double ratio, int precision = 1);

} // namespace pad

#endif // PAD_UTIL_TABLE_H
