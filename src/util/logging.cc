#include "util/logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace pad {

namespace {

std::atomic<LogLevel> globalLevel{LogLevel::Info};

// SweepRunner workers log concurrently; one mutex keeps each message
// line intact on the shared streams.
std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

// Sweep-job tag for the current thread; < 0 means "not a worker".
thread_local int tlsLogJob = -1;

std::string
prefixed(const std::string &msg)
{
    if (tlsLogJob < 0)
        return msg;
    return "[job " + std::to_string(tlsLogJob) + "] " + msg;
}

std::string
asciiLower(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        if (c >= 'A' && c <= 'Z')
            c = static_cast<char>(c - 'A' + 'a');
    return out;
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

std::optional<LogLevel>
logLevelFromName(std::string_view name)
{
    const std::string lower = asciiLower(name);
    if (lower == "silent")
        return LogLevel::Silent;
    if (lower == "error")
        return LogLevel::Error;
    if (lower == "warn" || lower == "warning")
        return LogLevel::Warn;
    if (lower == "info")
        return LogLevel::Info;
    if (lower == "debug")
        return LogLevel::Debug;
    return std::nullopt;
}

std::string_view
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Silent:
        return "silent";
      case LogLevel::Error:
        return "error";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Info:
        return "info";
      case LogLevel::Debug:
        return "debug";
    }
    return "info";
}

void
initLoggingFromEnvironment()
{
    static std::once_flag once;
    std::call_once(once, [] {
        const char *env = std::getenv("PAD_LOG_LEVEL");
        if (!env || !*env)
            return;
        if (const auto level = logLevelFromName(env)) {
            setLogLevel(*level);
        } else {
            warn("PAD_LOG_LEVEL='{}' is not a log level "
                 "(silent|error|warn|info|debug); ignoring",
                 env);
        }
    });
}

ScopedLogJob::ScopedLogJob(int job) : prev_(tlsLogJob)
{
    tlsLogJob = job;
}

ScopedLogJob::~ScopedLogJob()
{
    tlsLogJob = prev_;
}

namespace detail {

void
missingFormatArg(std::string_view fmt)
{
    static std::atomic<bool> warned{false};
    if (warned.exchange(true, std::memory_order_relaxed))
        return;
    // Call warnImpl directly: going through warn() would re-enter
    // formatMessage with this same diagnostic.
    if (logLevel() >= LogLevel::Warn)
        warnImpl("format string \"" + std::string(fmt) +
                 "\" has more {} placeholders than arguments");
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        const std::lock_guard<std::mutex> lock(logMutex());
        std::cerr << "panic: " << prefixed(msg) << " (" << file << ":"
                  << line << ")" << std::endl;
    }
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        const std::lock_guard<std::mutex> lock(logMutex());
        std::cerr << "fatal: " << prefixed(msg) << " (" << file << ":"
                  << line << ")" << std::endl;
    }
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    const std::lock_guard<std::mutex> lock(logMutex());
    std::cerr << "warn: " << prefixed(msg) << std::endl;
}

void
informImpl(const std::string &msg)
{
    const std::lock_guard<std::mutex> lock(logMutex());
    std::cout << "info: " << prefixed(msg) << std::endl;
}

void
debugImpl(const std::string &msg)
{
    const std::lock_guard<std::mutex> lock(logMutex());
    std::cerr << "debug: " << prefixed(msg) << std::endl;
}

} // namespace detail

} // namespace pad
