#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace pad {

template <typename Engine>
double
BasicRng<Engine>::boundedPareto(double alpha, double lo, double hi)
{
    PAD_ASSERT(alpha > 0 && lo > 0 && hi > lo);
    const double u = uniform();
    const double la = std::pow(lo, alpha);
    const double ha = std::pow(hi, alpha);
    // Inverse-CDF of the bounded Pareto distribution.
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

template class BasicRng<std::mt19937_64>;
template class BasicRng<SplitMix64>;
template class BasicRng<Xoshiro256pp>;
template class BasicRng<CounterRng>;

} // namespace pad
