#include "util/kv_config.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace pad {

namespace {

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

} // namespace

KvConfig
KvConfig::fromString(const std::string &text)
{
    KvConfig cfg;
    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        const std::string stripped = trim(line);
        if (stripped.empty())
            continue;
        const auto eq = stripped.find('=');
        if (eq == std::string::npos)
            PAD_FATAL("config line {}: expected 'key = value', got "
                      "'{}'",
                      lineno, stripped);
        const std::string key = trim(stripped.substr(0, eq));
        const std::string value = trim(stripped.substr(eq + 1));
        if (key.empty())
            PAD_FATAL("config line {}: empty key", lineno);
        cfg.values_[key] = value;
    }
    return cfg;
}

KvConfig
KvConfig::fromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        PAD_FATAL("cannot open config file: {}", path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return fromString(buf.str());
}

bool
KvConfig::has(const std::string &key) const
{
    return values_.count(key) > 0;
}

std::string
KvConfig::getString(const std::string &key,
                    const std::string &fallback) const
{
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
}

double
KvConfig::getDouble(const std::string &key, double fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        PAD_FATAL("config key '{}': '{}' is not a number", key,
                  it->second);
    return v;
}

long
KvConfig::getInt(const std::string &key, long fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    char *end = nullptr;
    const long v = std::strtol(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0')
        PAD_FATAL("config key '{}': '{}' is not an integer", key,
                  it->second);
    return v;
}

bool
KvConfig::getBool(const std::string &key, bool fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    const std::string &v = it->second;
    if (v == "true" || v == "1" || v == "yes")
        return true;
    if (v == "false" || v == "0" || v == "no")
        return false;
    PAD_FATAL("config key '{}': '{}' is not a boolean", key, v);
}

std::vector<std::string>
KvConfig::keys() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto &[k, v] : values_) {
        (void)v;
        out.push_back(k);
    }
    return out;
}

void
KvConfig::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

} // namespace pad
