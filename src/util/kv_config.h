/**
 * @file
 * Minimal key = value configuration files for the padsim driver and
 * experiment scripts. Syntax:
 *
 *   # comment
 *   scheme   = PAD
 *   nodes    = 4
 *   budget   = 0.75
 *   quiet    = true
 *
 * Later assignments override earlier ones; unknown keys are kept so
 * callers can validate their own namespace.
 */

#ifndef PAD_UTIL_KV_CONFIG_H
#define PAD_UTIL_KV_CONFIG_H

#include <map>
#include <string>
#include <vector>

namespace pad {

/**
 * Parsed key/value configuration.
 */
class KvConfig
{
  public:
    KvConfig() = default;

    /** Parse @p text; fatal() on malformed lines. */
    static KvConfig fromString(const std::string &text);

    /** Load and parse @p path; fatal() if unreadable. */
    static KvConfig fromFile(const std::string &path);

    /** True when @p key was assigned. */
    bool has(const std::string &key) const;

    /** String value, or @p fallback when absent. */
    std::string getString(const std::string &key,
                          const std::string &fallback = {}) const;

    /** Numeric value; fatal() when present but not a number. */
    double getDouble(const std::string &key, double fallback) const;

    /** Integer value; fatal() when present but not an integer. */
    long getInt(const std::string &key, long fallback) const;

    /** Boolean value (true/false/1/0/yes/no); fatal() otherwise. */
    bool getBool(const std::string &key, bool fallback) const;

    /** All keys in insertion-independent (sorted) order. */
    std::vector<std::string> keys() const;

    /** Set a value programmatically (overrides file contents). */
    void set(const std::string &key, const std::string &value);

  private:
    std::map<std::string, std::string> values_;
};

} // namespace pad

#endif // PAD_UTIL_KV_CONFIG_H
