/**
 * @file
 * Minimal streaming JSON writer.
 *
 * Emits syntactically valid JSON onto any std::ostream with correct
 * string escaping and deterministic number formatting (shortest
 * round-trippable decimal), so trace files, stats exports and run
 * manifests are stable enough to diff and to pin in golden tests.
 * Nesting is tracked internally; misuse (a value where a key is
 * required, unbalanced end calls) trips a PAD_ASSERT.
 */

#ifndef PAD_UTIL_JSON_WRITER_H
#define PAD_UTIL_JSON_WRITER_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace pad {

/**
 * Streaming writer with explicit begin/end nesting.
 *
 * @code
 *   JsonWriter w(os);
 *   w.beginObject().key("name").value("run").key("seed").value(42)
 *    .endObject();
 * @endcode
 */
class JsonWriter
{
  public:
    /**
     * @param os     destination stream (not owned)
     * @param indent spaces per nesting level; 0 = minified one-liner
     */
    explicit JsonWriter(std::ostream &os, int indent = 0);

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Write an object key; the next call must produce its value. */
    JsonWriter &key(std::string_view k);

    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(bool v);
    JsonWriter &null();

    /**
     * Splice pre-rendered JSON (must itself be a valid JSON value)
     * into the current value position, e.g. a stats blob rendered
     * elsewhere.
     */
    JsonWriter &rawValue(std::string_view json);

    /** True when every begun object/array has been ended. */
    bool balanced() const { return stack_.empty(); }

    /** Escape @p s for inclusion inside a JSON string literal. */
    static std::string escape(std::string_view s);

    /**
     * Deterministic decimal rendering of a finite double: the
     * shortest "%.{p}g" form that parses back to the same bits.
     * Non-finite values render as null (JSON has no Inf/NaN).
     */
    static std::string formatDouble(double v);

  private:
    struct Level {
        bool object;
        std::size_t count = 0;
    };

    void beforeValue();
    void newline();

    std::ostream &os_;
    int indent_;
    bool keyPending_ = false;
    std::vector<Level> stack_;
};

} // namespace pad

#endif // PAD_UTIL_JSON_WRITER_H
