#include "util/csv.h"

#include <sstream>

#include "util/logging.h"

namespace pad {

std::vector<std::string>
parseCsvLine(const std::string &line)
{
    std::vector<std::string> fields;
    std::string cur;
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (quoted) {
            if (c == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    cur.push_back('"');
                    ++i;
                } else {
                    quoted = false;
                }
            } else {
                cur.push_back(c);
            }
        } else if (c == '"') {
            quoted = true;
        } else if (c == ',') {
            fields.push_back(std::move(cur));
            cur.clear();
        } else if (c != '\r') {
            cur.push_back(c);
        }
    }
    fields.push_back(std::move(cur));
    return fields;
}

std::string
formatCsvLine(const std::vector<std::string> &fields)
{
    std::ostringstream out;
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i)
            out << ',';
        const std::string &f = fields[i];
        const bool needs_quote =
            f.find_first_of(",\"\n") != std::string::npos;
        if (needs_quote) {
            out << '"';
            for (char c : f) {
                if (c == '"')
                    out << "\"\"";
                else
                    out << c;
            }
            out << '"';
        } else {
            out << f;
        }
    }
    return out.str();
}

CsvReader::CsvReader(const std::string &path) : in_(path)
{
    if (!in_)
        PAD_FATAL("cannot open CSV file for reading: {}", path);
}

bool
CsvReader::next(std::vector<std::string> &fields)
{
    std::string line;
    while (std::getline(in_, line)) {
        if (line.empty())
            continue;
        fields = parseCsvLine(line);
        ++records_;
        return true;
    }
    return false;
}

CsvWriter::CsvWriter(const std::string &path) : out_(path)
{
    if (!out_)
        PAD_FATAL("cannot open CSV file for writing: {}", path);
}

void
CsvWriter::write(const std::vector<std::string> &fields)
{
    out_ << formatCsvLine(fields) << '\n';
}

void
CsvWriter::writeNumbers(const std::vector<double> &values)
{
    std::vector<std::string> fields;
    fields.reserve(values.size());
    for (double v : values) {
        std::ostringstream one;
        one << v;
        fields.push_back(one.str());
    }
    write(fields);
}

} // namespace pad
