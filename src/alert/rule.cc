#include "alert/rule.h"

#include <fstream>
#include <set>
#include <sstream>

#include "util/json.h"

namespace pad::alert {

namespace {

/** Split a dotted name into components (empty components kept). */
std::vector<std::string_view>
splitDots(std::string_view s)
{
    std::vector<std::string_view> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t dot = s.find('.', start);
        if (dot == std::string_view::npos) {
            out.push_back(s.substr(start));
            return out;
        }
        out.push_back(s.substr(start, dot - start));
        start = dot + 1;
    }
}

bool
componentMatches(std::string_view pat, std::string_view name)
{
    if (pat == "*")
        return true;
    if (!pat.empty() && pat.back() == '*') {
        const std::string_view stem = pat.substr(0, pat.size() - 1);
        return name.size() >= stem.size() &&
               name.substr(0, stem.size()) == stem;
    }
    return pat == name;
}

} // namespace

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::Info:
        return "info";
      case Severity::Warning:
        return "warning";
      case Severity::Critical:
        return "critical";
    }
    return "warning";
}

std::optional<Severity>
severityFromName(std::string_view name)
{
    if (name == "info")
        return Severity::Info;
    if (name == "warning")
        return Severity::Warning;
    if (name == "critical")
        return Severity::Critical;
    return std::nullopt;
}

const char *
predicateName(PredicateKind k)
{
    switch (k) {
      case PredicateKind::Threshold:
        return "threshold";
      case PredicateKind::RateOfChange:
        return "rate_of_change";
      case PredicateKind::Absence:
        return "absence";
      case PredicateKind::EventCount:
        return "event_count";
    }
    return "threshold";
}

std::optional<PredicateKind>
predicateFromName(std::string_view name)
{
    if (name == "threshold")
        return PredicateKind::Threshold;
    if (name == "rate_of_change")
        return PredicateKind::RateOfChange;
    if (name == "absence")
        return PredicateKind::Absence;
    if (name == "event_count")
        return PredicateKind::EventCount;
    return std::nullopt;
}

const char *
compareOpName(CompareOp op)
{
    switch (op) {
      case CompareOp::Gt:
        return ">";
      case CompareOp::Ge:
        return ">=";
      case CompareOp::Lt:
        return "<";
      case CompareOp::Le:
        return "<=";
    }
    return ">";
}

std::optional<CompareOp>
compareOpFromName(std::string_view name)
{
    if (name == ">")
        return CompareOp::Gt;
    if (name == ">=")
        return CompareOp::Ge;
    if (name == "<")
        return CompareOp::Lt;
    if (name == "<=")
        return CompareOp::Le;
    return std::nullopt;
}

bool
compareValues(CompareOp op, double lhs, double rhs)
{
    switch (op) {
      case CompareOp::Gt:
        return lhs > rhs;
      case CompareOp::Ge:
        return lhs >= rhs;
      case CompareOp::Lt:
        return lhs < rhs;
      case CompareOp::Le:
        return lhs <= rhs;
    }
    return false;
}

bool
signalMatches(std::string_view pattern, std::string_view name)
{
    const auto pats = splitDots(pattern);
    const auto names = splitDots(name);
    if (pats.size() != names.size())
        return false;
    for (std::size_t k = 0; k < pats.size(); ++k)
        if (!componentMatches(pats[k], names[k]))
            return false;
    return true;
}

std::optional<RuleSet>
parseRules(std::string_view text, std::string *error)
{
    auto fail = [&](const std::string &what) -> std::optional<RuleSet> {
        if (error)
            *error = what;
        return std::nullopt;
    };

    std::string parseError;
    const auto doc = parseJson(text, &parseError);
    if (!doc)
        return fail("invalid JSON: " + parseError);
    if (!doc->isObject())
        return fail("rules document must be a JSON object");
    for (const auto &[key, value] : doc->members)
        if (key != "rules")
            return fail("unknown top-level key: " + key);
    const JsonValue *list = doc->find("rules");
    if (!list || !list->isArray())
        return fail("missing \"rules\" array");

    RuleSet out;
    std::set<std::string> seen;
    for (std::size_t k = 0; k < list->array.size(); ++k) {
        const JsonValue &node = list->array[k];
        const std::string where =
            "rule #" + std::to_string(k + 1) + ": ";
        if (!node.isObject())
            return fail(where + "must be an object");

        AlertRule rule;
        bool hasValue = false;
        bool hasWindow = false;
        for (const auto &[key, value] : node.members) {
            if (key == "name") {
                if (!value.isString() || value.str.empty())
                    return fail(where + "\"name\" must be a "
                                        "non-empty string");
                rule.name = value.str;
            } else if (key == "severity") {
                if (!value.isString())
                    return fail(where + "\"severity\" must be a string");
                const auto s = severityFromName(value.str);
                if (!s)
                    return fail(where + "unknown severity: " +
                                value.str);
                rule.severity = *s;
            } else if (key == "predicate") {
                if (!value.isString())
                    return fail(where +
                                "\"predicate\" must be a string");
                const auto p = predicateFromName(value.str);
                if (!p)
                    return fail(where + "unknown predicate: " +
                                value.str);
                rule.predicate = *p;
            } else if (key == "signal") {
                if (!value.isString() || value.str.empty())
                    return fail(where + "\"signal\" must be a "
                                        "non-empty string");
                rule.signal = value.str;
            } else if (key == "op") {
                if (!value.isString())
                    return fail(where + "\"op\" must be a string");
                const auto op = compareOpFromName(value.str);
                if (!op)
                    return fail(where + "unknown op: " + value.str);
                rule.op = *op;
            } else if (key == "value") {
                if (!value.isNumber())
                    return fail(where + "\"value\" must be a number");
                rule.value = value.number;
                hasValue = true;
            } else if (key == "window_sec") {
                if (!value.isNumber() || value.number <= 0.0)
                    return fail(where + "\"window_sec\" must be a "
                                        "positive number");
                rule.windowSec = value.number;
                hasWindow = true;
            } else if (key == "for_sec") {
                if (!value.isNumber() || value.number < 0.0)
                    return fail(where + "\"for_sec\" must be a "
                                        "non-negative number");
                rule.forSec = value.number;
            } else if (key == "description") {
                if (!value.isString())
                    return fail(where +
                                "\"description\" must be a string");
                rule.description = value.str;
            } else {
                return fail(where + "unknown key: " + key);
            }
        }

        if (rule.name.empty())
            return fail(where + "missing \"name\"");
        if (rule.signal.empty())
            return fail("rule \"" + rule.name +
                        "\": missing \"signal\"");
        if (!seen.insert(rule.name).second)
            return fail("duplicate rule name: " + rule.name);
        if (rule.predicate != PredicateKind::Absence && !hasValue)
            return fail("rule \"" + rule.name +
                        "\": missing \"value\"");
        if (rule.predicate == PredicateKind::Absence && !hasWindow)
            return fail("rule \"" + rule.name +
                        "\": absence needs \"window_sec\"");
        out.rules.push_back(std::move(rule));
    }
    return out;
}

std::optional<RuleSet>
loadRulesFile(const std::string &path, std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        if (error)
            *error = "cannot open rules file: " + path;
        return std::nullopt;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    auto out = parseRules(buf.str(), error);
    if (!out && error)
        *error = path + ": " + *error;
    return out;
}

} // namespace pad::alert
