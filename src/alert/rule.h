/**
 * @file
 * Declarative alert rules (DESIGN.md §10).
 *
 * A rule binds one predicate over a telemetry signal — a TimeSeries
 * name pattern or a curated trace-event name — to a severity and a
 * `for:`-style hold duration: the predicate must hold continuously
 * for `forSec` simulated seconds before the rule fires. Four
 * predicate kinds cover the paper's monitoring semantics:
 *
 *   threshold      value OP limit on every sample
 *   rate_of_change per-second slope over a trailing window
 *   absence        no sample of the signal for `windowSec`
 *   event_count    occurrences of a trace event in a trailing window
 *
 * Rules are parsed from a JSON file by the in-tree parser — no
 * external dependency — and evaluated on sim time only, so alert
 * output obeys the same parallel==serial determinism contract as
 * every other artifact (DESIGN.md §7).
 */

#ifndef PAD_ALERT_RULE_H
#define PAD_ALERT_RULE_H

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.h"

namespace pad::alert {

/** Incident severity, ordered least to most severe. */
enum class Severity { Info, Warning, Critical };

/** Lower-case severity name ("info", "warning", "critical"). */
const char *severityName(Severity s);

/** Parse a severity name; nullopt when unknown. */
std::optional<Severity> severityFromName(std::string_view name);

/** What a rule evaluates. */
enum class PredicateKind {
    Threshold,    ///< sample value OP limit
    RateOfChange, ///< per-second slope over windowSec OP limit
    Absence,      ///< signal silent for more than windowSec
    EventCount,   ///< trace-event occurrences in windowSec OP limit
};

/** Rules-file spelling of a predicate kind. */
const char *predicateName(PredicateKind k);

/** Parse a predicate name; nullopt when unknown. */
std::optional<PredicateKind> predicateFromName(std::string_view name);

/** Comparison operator of threshold-style predicates. */
enum class CompareOp { Gt, Ge, Lt, Le };

/** Rules-file spelling (">", ">=", "<", "<="). */
const char *compareOpName(CompareOp op);

/** Parse an operator spelling; nullopt when unknown. */
std::optional<CompareOp> compareOpFromName(std::string_view name);

/** Evaluate @p lhs OP @p rhs. */
bool compareValues(CompareOp op, double lhs, double rhs);

/**
 * One declarative alert rule. `signal` names the telemetry series
 * (threshold / rate_of_change / absence) or the trace-event type
 * (event_count) the rule watches; series patterns may use '*' per
 * dotted component ("rack*.soc" watches every rack's SOC and tracks
 * one independent alert instance per concrete series).
 */
struct AlertRule {
    /** Unique rule name; part of every incident ID. */
    std::string name;
    Severity severity = Severity::Warning;
    PredicateKind predicate = PredicateKind::Threshold;
    /** Series pattern or event name (see class comment). */
    std::string signal;
    CompareOp op = CompareOp::Gt;
    /** Comparison limit (threshold/rate/count); unused for absence. */
    double value = 0.0;
    /** Trailing window, seconds (rate/absence/event_count). */
    double windowSec = 60.0;
    /** Continuous-hold duration before firing, seconds. */
    double forSec = 0.0;
    /** Human-readable description for dashboards and HELP text. */
    std::string description;
};

/** An ordered collection of rules, as loaded from one rules file. */
struct RuleSet {
    std::vector<AlertRule> rules;

    bool empty() const { return rules.empty(); }
    std::size_t size() const { return rules.size(); }
};

/**
 * Match a series name against a rule pattern, component by dotted
 * component: a pattern component "*" matches anything, a trailing
 * '*' matches any suffix ("rack*" matches "rack19"), otherwise the
 * components must be equal. Component counts must agree.
 */
bool signalMatches(std::string_view pattern, std::string_view name);

/**
 * Parse a rules document:
 *
 *   {"rules": [{"name": "soc-low", "severity": "warning",
 *               "predicate": "threshold", "signal": "rack*.soc",
 *               "op": "<", "value": 0.35, "for_sec": 60,
 *               "description": "..."}, ...]}
 *
 * Parsing is strict: unknown keys, duplicate rule names, unknown
 * enum spellings and missing required fields are all errors, so a
 * typo in a rules file cannot silently disable monitoring. Returns
 * nullopt with a description in @p error on failure.
 */
std::optional<RuleSet> parseRules(std::string_view text,
                                  std::string *error = nullptr);

/** parseRules() over the contents of @p path. */
std::optional<RuleSet> loadRulesFile(const std::string &path,
                                     std::string *error = nullptr);

} // namespace pad::alert

#endif // PAD_ALERT_RULE_H
