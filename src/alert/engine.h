/**
 * @file
 * The online alert engine (DESIGN.md §10).
 *
 * AlertEngine evaluates a RuleSet against the live telemetry stream:
 * it observes every TelemetryHub sample (as a telemetry
 * SampleListener) and every curated trace event (through an
 * AlertTraceSink bound around the run), entirely on sim time. Each
 * rule tracks one independent alert *instance* per concrete signal a
 * wildcard pattern matches, and every instance walks the lifecycle
 *
 *   idle -> pending (predicate holds) -> firing (held for forSec)
 *        -> resolved (predicate stops holding)
 *
 * Firing creates an Incident whose ID derives from (rule, signal,
 * firing tick) and schedules a ±contextWindow flight-recorder
 * snapshot, sealed once the sim clock passes the window (or at
 * finalize()). Because nothing reads wall time or thread identity,
 * alert output is bit-identical between serial runs and parallel
 * sweeps (DESIGN.md §7).
 *
 * Not thread-safe: one engine belongs to one simulation job and is
 * driven from that job's thread only, like the DataCenter it
 * monitors.
 */

#ifndef PAD_ALERT_ENGINE_H
#define PAD_ALERT_ENGINE_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "alert/flight_recorder.h"
#include "alert/incident.h"
#include "alert/rule.h"
#include "obs/trace_sink.h"
#include "telemetry/hub.h"
#include "telemetry/prom.h"
#include "util/types.h"

namespace pad::alert {

class AlertEngine : public telemetry::SampleListener
{
  public:
    struct Options {
        /** Flight-recorder samples retained per signal. */
        std::size_t flightCapacity = 2048;
        /** Context captured around a firing moment, ± seconds. */
        double contextWindowSec = 120.0;
        /** Context series per incident (trigger + siblings). */
        std::size_t maxContextSeries = 8;
    };

    explicit AlertEngine(RuleSet rules);
    AlertEngine(RuleSet rules, const Options &opts);

    /** Telemetry sample feed (telemetry::SampleListener). */
    void onSample(std::string_view name, Tick when,
                  double value) override;

    /**
     * Hub fast path: @p seriesId indexes a cached routing decision,
     * so steady-state samples skip every by-name lookup (the id is
     * hub-local; one engine observes exactly one hub).
     */
    void onSample(std::uint32_t seriesId, std::string_view name,
                  Tick when, double value) override;

    /** Curated trace-event feed (via AlertTraceSink). */
    void observeEvent(std::string_view name, Tick when);

    /**
     * Advance the engine clock without a sample: evaluates absence
     * and event-count windows and seals ripe context captures. Also
     * called implicitly by every observation.
     */
    void advanceTo(Tick now);

    /**
     * End of run: evaluates everything up to @p endOfRun, seals all
     * open context captures (incidents still firing keep
     * resolvedAt == kTickNever) and sorts incidents by (firing tick,
     * rule, signal). Must be called exactly once, after which the
     * engine only serves queries.
     */
    void finalize(Tick endOfRun);

    /** Engine clock: the newest tick observed so far. */
    Tick now() const { return now_; }

    bool finalized() const { return finalized_; }

    /** Sealed incidents; stable order, valid after finalize(). */
    const std::vector<Incident> &incidents() const;

    /**
     * Streaming observer of sealed incidents. The sink is invoked
     * exactly once per incident, at the sim-time moment its flight-
     * recorder context is sealed (the clock passing contextUntil, or
     * finalize() for captures still open at end of run), on the
     * thread driving the engine. Seal order is a pure function of
     * sim time, so a live padd session and its deterministic replay
     * stream byte-identical incident sequences (DESIGN.md §13).
     * Note the ordering caveat: the batch incidents() view is
     * re-sorted by (firing tick, rule, signal) at finalize(), while
     * the stream arrives in seal order; and an incident that
     * resolves *after* its context window closes streams with
     * resolvedAt still kTickNever.
     */
    using IncidentSink = std::function<void(const Incident &)>;

    /** Attach @p sink (empty = detach). Call before driving. */
    void setIncidentSink(IncidentSink sink) { sink_ = std::move(sink); }

    /** Incidents sealed (and streamed) so far; valid mid-run. */
    std::size_t sealedCount() const { return sealed_; }

    /**
     * Per-rule exposition snapshot, in rule order: lifecycle state
     * (0 idle, 1 pending, 2 firing — the worst instance wins) and
     * the count of incidents fired so far.
     */
    std::vector<telemetry::AlertStateSample> ruleStates() const;

    const RuleSet &rules() const { return rules_; }

    /** Full-resolution history backing context captures. */
    const FlightRecorder &recorder() const { return recorder_; }

  private:
    static constexpr std::size_t kNoIncident = ~std::size_t{0};

    struct Instance {
        enum class State { Idle, Pending, Firing };

        std::string signal;
        State state = State::Idle;
        Tick pendingSince = kTickNever;
        /** Open incident index while Firing. */
        std::size_t incident = kNoIncident;
        /** Trailing samples (RateOfChange): a compacting window —
         *  windowHead advances past expired samples instead of
         *  erasing them, and the live tail slides back to the front
         *  only once the dead prefix dominates, so the store stays
         *  contiguous with amortized O(1) maintenance per sample. */
        std::vector<FlightSample> window;
        std::size_t windowHead = 0;
        /** Trailing event times (EventCount). */
        std::deque<Tick> events;
        /** Newest observation (Absence). */
        Tick lastSeen = kTickNever;
    };

    /**
     * A signal's routing decision, resolved once per name: the rule
     * indices it feeds, plus per-(rule, signal) Instance and flight
     * ring pointers cached on first use (map nodes are stable, so
     * the pointers stay valid for the engine's lifetime).
     */
    struct Route {
        struct Target {
            std::size_t rule = 0;
            Instance *inst = nullptr;
        };

        std::vector<Target> sampleRules;
        std::vector<Target> absenceRules;
        std::vector<Target> eventRules;
        FlightRecorder::Ring *ring = nullptr;
    };

    Route &route(std::string_view signal);
    void handleSample(Route &r, std::string_view name, Tick when,
                      double value);
    Instance &instance(std::size_t r, std::string_view signal);
    void evaluate(std::size_t r, Instance &inst, Tick when, bool cond,
                  double trigger);
    void fire(std::size_t r, Instance &inst, Tick when,
              double trigger);
    void sealCapture(Incident &incident, Tick upTo);
    void emitSealed(const Incident &incident);
    void checkWindows(Tick now);

    RuleSet rules_;
    Options opts_;
    IncidentSink sink_;
    std::size_t sealed_ = 0;
    Tick contextTicks_ = 0;
    /** Per-rule forSec / windowSec, pre-converted to ticks. */
    std::vector<Tick> forTicks_;
    std::vector<Tick> windowTicks_;
    FlightRecorder recorder_;
    /** signal name -> routing decision (samples and events alike). */
    std::map<std::string, Route, std::less<>> routes_;
    /** Hub series id -> route, the steady-state sample path. */
    std::vector<Route *> routesById_;
    /** instances_[r]: the rule's instances keyed by concrete signal. */
    std::vector<std::map<std::string, Instance, std::less<>>>
        instances_;
    std::vector<std::uint64_t> fired_;
    std::vector<Incident> incidents_;
    /** Incident indices whose context window is still open. */
    std::vector<std::size_t> openCaptures_;
    Tick now_ = 0;
    /** Last tick checkWindows() ran at, and whether its inputs
     *  (event deques, absence marks) changed since. */
    Tick windowsCheckedAt_ = kTickNever;
    bool windowsDirty_ = false;
    bool finalized_ = false;
};

/**
 * TraceSink adapter feeding curated events into an AlertEngine, with
 * optional passthrough to an inner sink (the run's real trace file).
 * Bind it with an obs::TraceScope around the monitored run; the
 * engine then sees policy transitions, µDEB shaves and attack events
 * even when no trace file was requested.
 *
 * Unlike regular obs sinks this one is NOT thread-safe: it belongs
 * to exactly one simulation job, the same contract as the engine.
 */
class AlertTraceSink : public obs::TraceSink
{
  public:
    explicit AlertTraceSink(AlertEngine &engine,
                            obs::TraceSink *inner = nullptr)
        : engine_(engine), inner_(inner)
    {
    }

    void
    write(const obs::TraceEvent &event) override
    {
        engine_.observeEvent(event.name, event.when);
        if (inner_)
            inner_->write(event);
    }

    void
    flush() override
    {
        if (inner_)
            inner_->flush();
    }

  private:
    AlertEngine &engine_;
    obs::TraceSink *inner_;
};

} // namespace pad::alert

#endif // PAD_ALERT_ENGINE_H
