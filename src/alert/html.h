/**
 * @file
 * Self-contained HTML incident dashboard.
 *
 * Renders a list of incidents (typically read back from an
 * incidents.jsonl file) as one standalone HTML document: summary
 * tiles, a policy-level timeline, an incident table and per-incident
 * flight-recorder sparklines — everything inline (CSS and SVG, no
 * scripts, no external references), so the file opens anywhere and
 * can be archived next to the run's other artifacts. Output is
 * deterministic for identical input, like every artifact writer in
 * the tree.
 */

#ifndef PAD_ALERT_HTML_H
#define PAD_ALERT_HTML_H

#include <iosfwd>
#include <string>
#include <vector>

#include "alert/incident.h"

namespace pad::alert {

struct DashboardOptions {
    /** Page heading. */
    std::string title = "PAD incident dashboard";
    /** Sparklines rendered per incident card. */
    std::size_t maxSparklines = 6;
};

/** Render the dashboard for @p incidents onto @p os. */
void writeIncidentDashboard(std::ostream &os,
                            const std::vector<Incident> &incidents,
                            const DashboardOptions &opts = {});

/** writeIncidentDashboard() into a string. */
std::string renderIncidentDashboard(
    const std::vector<Incident> &incidents,
    const DashboardOptions &opts = {});

/** Escape text for inclusion in HTML element or attribute content. */
std::string htmlEscape(std::string_view text);

} // namespace pad::alert

#endif // PAD_ALERT_HTML_H
