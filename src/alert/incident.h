/**
 * @file
 * Incident records and their JSONL serialization.
 *
 * An Incident is one completed pending→firing(→resolved) episode of
 * an alert-rule instance, annotated with the flight-recorder context
 * snapshot taken around the firing moment. Incidents stream to an
 * `incidents.jsonl` file (one self-contained JSON object per line,
 * same convention as the trace files) and read back for the
 * `padtrace incidents` dashboard.
 *
 * Incident IDs are a pure function of (rule, signal, firing tick) —
 * sim time, never wall time — so the same scenario produces the same
 * IDs on every run and under any sweep parallelism. Sweep jobs add a
 * "job<i>." prefix, mirroring the stats/telemetry merge convention.
 */

#ifndef PAD_ALERT_INCIDENT_H
#define PAD_ALERT_INCIDENT_H

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "alert/flight_recorder.h"
#include "alert/rule.h"
#include "util/types.h"

namespace pad::alert {

/** One context series captured into an incident. */
struct IncidentSeries {
    std::string signal;
    std::vector<FlightSample> samples;
};

/** One firing episode of an alert-rule instance. */
struct Incident {
    /** Rule that fired. */
    std::string rule;
    /** Concrete signal instance ("rack3.soc", not "rack*.soc"). */
    std::string signal;
    Severity severity = Severity::Warning;
    PredicateKind predicate = PredicateKind::Threshold;
    std::string description;
    /** Sweep-job index; -1 for a single (serial) run. */
    int job = -1;
    /** When the predicate first held. */
    Tick pendingSince = 0;
    /** When the hold duration elapsed and the alert fired. */
    Tick firingSince = 0;
    /** When the predicate stopped holding; kTickNever = end of run. */
    Tick resolvedAt = kTickNever;
    /** Observed value at the firing moment. */
    double triggerValue = 0.0;
    /** The rule's comparison limit. */
    double threshold = 0.0;
    /** Context snapshot bounds (sim ticks). */
    Tick contextFrom = 0;
    Tick contextUntil = 0;
    /** Flight-recorder snapshot around the firing moment. */
    std::vector<IncidentSeries> context;

    /** Stable ID: [job<i>.]rule:signal@firingTick. */
    std::string id() const;
};

/**
 * Write one incident as a single newline-terminated JSON line and
 * flush the stream, so a live `tail -f` (or the padd daemon's
 * streaming mode) never observes a truncated record.
 */
void writeIncidentLine(std::ostream &os, const Incident &incident);

/** Write one JSON object per incident, one (flushed) line each. */
void writeIncidentsJsonl(std::ostream &os,
                         const std::vector<Incident> &incidents);

/** writeIncidentsJsonl() into a string. */
std::string renderIncidentsJsonl(const std::vector<Incident> &incidents);

/**
 * Parse an incidents.jsonl document. Strict: every non-empty line
 * must be a valid incident object. Returns nullopt with a message in
 * @p error (including the offending line number) on failure.
 */
std::optional<std::vector<Incident>>
readIncidentsJsonl(std::string_view text, std::string *error = nullptr);

/** readIncidentsJsonl() over the contents of @p path. */
std::optional<std::vector<Incident>>
readIncidentsFile(const std::string &path, std::string *error = nullptr);

} // namespace pad::alert

#endif // PAD_ALERT_INCIDENT_H
