#include "alert/engine.h"

#include <algorithm>

#include "util/logging.h"

namespace pad::alert {

namespace {

/** First dotted component plus the dot ("rack3." from "rack3.soc"). */
std::string_view
groupPrefix(std::string_view signal)
{
    const std::size_t dot = signal.find('.');
    return dot == std::string_view::npos ? std::string_view{}
                                         : signal.substr(0, dot + 1);
}

} // namespace

AlertEngine::AlertEngine(RuleSet rules)
    : AlertEngine(std::move(rules), Options{})
{
}

AlertEngine::AlertEngine(RuleSet rules, const Options &opts)
    : rules_(std::move(rules)),
      opts_(opts),
      contextTicks_(secondsToTicks(opts.contextWindowSec)),
      recorder_(opts.flightCapacity),
      instances_(rules_.size()),
      fired_(rules_.size(), 0)
{
    forTicks_.reserve(rules_.size());
    windowTicks_.reserve(rules_.size());
    for (const AlertRule &rule : rules_.rules) {
        forTicks_.push_back(secondsToTicks(rule.forSec));
        windowTicks_.push_back(secondsToTicks(rule.windowSec));
    }
}

AlertEngine::Route &
AlertEngine::route(std::string_view signal)
{
    auto it = routes_.find(signal);
    if (it != routes_.end())
        return it->second;
    Route r;
    for (std::size_t k = 0; k < rules_.size(); ++k) {
        const AlertRule &rule = rules_.rules[k];
        if (!signalMatches(rule.signal, signal))
            continue;
        switch (rule.predicate) {
          case PredicateKind::Threshold:
          case PredicateKind::RateOfChange:
            r.sampleRules.push_back(Route::Target{k, nullptr});
            break;
          case PredicateKind::Absence:
            r.absenceRules.push_back(Route::Target{k, nullptr});
            break;
          case PredicateKind::EventCount:
            r.eventRules.push_back(Route::Target{k, nullptr});
            break;
        }
    }
    return routes_.emplace(std::string(signal), std::move(r))
        .first->second;
}

AlertEngine::Instance &
AlertEngine::instance(std::size_t r, std::string_view signal)
{
    auto &bySignal = instances_[r];
    auto it = bySignal.find(signal);
    if (it == bySignal.end()) {
        Instance inst;
        inst.signal = std::string(signal);
        it = bySignal.emplace(inst.signal, std::move(inst)).first;
    }
    return it->second;
}

void
AlertEngine::handleSample(Route &r, std::string_view name, Tick when,
                          double value)
{
    PAD_ASSERT(!finalized_, "alert engine already finalized");
    if (!r.ring)
        r.ring = &recorder_.ring(name);
    r.ring->push(FlightSample{when, value});
    for (Route::Target &t : r.sampleRules) {
        if (!t.inst)
            t.inst = &instance(t.rule, name);
        const AlertRule &rule = rules_.rules[t.rule];
        Instance &inst = *t.inst;
        if (rule.predicate == PredicateKind::Threshold) {
            evaluate(t.rule, inst, when,
                     compareValues(rule.op, value, rule.value), value);
            continue;
        }
        // Rate of change: per-second slope across the trailing
        // window, evaluated whenever a new sample of the signal
        // arrives. Fewer than two samples in the window means no
        // defined slope, which never holds.
        const Tick windowTicks = windowTicks_[t.rule];
        inst.window.push_back(FlightSample{when, value});
        const Tick cutoff = when - windowTicks;
        std::size_t head = inst.windowHead;
        while (head < inst.window.size() &&
               inst.window[head].when < cutoff)
            ++head;
        if (head > 64 && head * 2 > inst.window.size()) {
            inst.window.erase(inst.window.begin(),
                              inst.window.begin() +
                                  static_cast<std::ptrdiff_t>(head));
            head = 0;
        }
        inst.windowHead = head;
        bool cond = false;
        double rate = 0.0;
        if (inst.window.size() - head >= 2) {
            const FlightSample &oldest = inst.window[head];
            const double spanSec =
                ticksToSeconds(when - oldest.when);
            if (spanSec > 0.0) {
                rate = (value - oldest.value) / spanSec;
                cond = compareValues(rule.op, rate, rule.value);
            }
        }
        evaluate(t.rule, inst, when, cond, rate);
    }
    for (Route::Target &t : r.absenceRules) {
        if (!t.inst)
            t.inst = &instance(t.rule, name);
        t.inst->lastSeen = when;
        windowsDirty_ = true;
    }
    advanceTo(when);
}

void
AlertEngine::onSample(std::string_view name, Tick when, double value)
{
    handleSample(route(name), name, when, value);
}

void
AlertEngine::onSample(std::uint32_t seriesId, std::string_view name,
                      Tick when, double value)
{
    if (seriesId >= routesById_.size())
        routesById_.resize(seriesId + 1, nullptr);
    Route *&r = routesById_[seriesId];
    if (!r)
        r = &route(name);
    handleSample(*r, name, when, value);
}

void
AlertEngine::observeEvent(std::string_view name, Tick when)
{
    PAD_ASSERT(!finalized_, "alert engine already finalized");
    Route &r = route(name);
    if (!r.eventRules.empty()) {
        if (!r.ring)
            r.ring = &recorder_.ring(name);
        r.ring->push(FlightSample{when, 1.0});
    }
    for (Route::Target &t : r.eventRules) {
        if (!t.inst)
            t.inst = &instance(t.rule, name);
        t.inst->events.push_back(when);
        windowsDirty_ = true;
    }
    advanceTo(when);
}

void
AlertEngine::advanceTo(Tick now)
{
    if (now > now_)
        now_ = now;
    // Absence/event-count conditions depend only on the clock, the
    // event deques and lastSeen marks, so re-scanning them is pure
    // waste until one of those moved. This keeps the per-sample cost
    // of the common case (a routed threshold check) flat no matter
    // how many windowed rules are loaded.
    if (windowsDirty_ || now_ > windowsCheckedAt_) {
        checkWindows(now_);
        windowsCheckedAt_ = now_;
        windowsDirty_ = false;
    }

    // Seal context captures whose window the clock has passed.
    if (openCaptures_.empty())
        return;
    std::size_t kept = 0;
    for (const std::size_t idx : openCaptures_) {
        if (now_ >= incidents_[idx].contextUntil) {
            sealCapture(incidents_[idx], now_);
            emitSealed(incidents_[idx]);
        } else {
            openCaptures_[kept++] = idx;
        }
    }
    openCaptures_.resize(kept);
}

void
AlertEngine::checkWindows(Tick now)
{
    for (std::size_t k = 0; k < rules_.size(); ++k) {
        const AlertRule &rule = rules_.rules[k];
        if (rule.predicate == PredicateKind::Absence) {
            const Tick windowTicks = windowTicks_[k];
            for (auto &[signal, inst] : instances_[k]) {
                const bool cond = inst.lastSeen != kTickNever &&
                                  now - inst.lastSeen > windowTicks;
                evaluate(k, inst, now, cond,
                         inst.lastSeen == kTickNever
                             ? 0.0
                             : ticksToSeconds(now - inst.lastSeen));
            }
        } else if (rule.predicate == PredicateKind::EventCount) {
            const Tick windowTicks = windowTicks_[k];
            for (auto &[signal, inst] : instances_[k]) {
                while (!inst.events.empty() &&
                       inst.events.front() < now - windowTicks)
                    inst.events.pop_front();
                const auto count =
                    static_cast<double>(inst.events.size());
                evaluate(k, inst, now,
                         compareValues(rule.op, count, rule.value),
                         count);
            }
        }
    }
}

void
AlertEngine::evaluate(std::size_t r, Instance &inst, Tick when,
                      bool cond, double trigger)
{
    const Tick forTicks = forTicks_[r];
    switch (inst.state) {
      case Instance::State::Idle:
        if (cond) {
            inst.state = Instance::State::Pending;
            inst.pendingSince = when;
            if (when - inst.pendingSince >= forTicks)
                fire(r, inst, when, trigger);
        }
        break;
      case Instance::State::Pending:
        if (!cond) {
            inst.state = Instance::State::Idle;
            inst.pendingSince = kTickNever;
        } else if (when - inst.pendingSince >= forTicks) {
            fire(r, inst, when, trigger);
        }
        break;
      case Instance::State::Firing:
        if (!cond) {
            incidents_[inst.incident].resolvedAt = when;
            inst.state = Instance::State::Idle;
            inst.pendingSince = kTickNever;
            inst.incident = kNoIncident;
        }
        break;
    }
}

void
AlertEngine::fire(std::size_t r, Instance &inst, Tick when,
                  double trigger)
{
    const AlertRule &rule = rules_.rules[r];
    Incident inc;
    inc.rule = rule.name;
    inc.signal = inst.signal;
    inc.severity = rule.severity;
    inc.predicate = rule.predicate;
    inc.description = rule.description;
    inc.pendingSince = inst.pendingSince;
    inc.firingSince = when;
    inc.triggerValue = trigger;
    inc.threshold = rule.value;
    inc.contextFrom = std::max<Tick>(0, when - contextTicks_);
    inc.contextUntil = when + contextTicks_;

    inst.state = Instance::State::Firing;
    inst.incident = incidents_.size();
    openCaptures_.push_back(incidents_.size());
    incidents_.push_back(std::move(inc));
    ++fired_[r];
}

void
AlertEngine::emitSealed(const Incident &incident)
{
    ++sealed_;
    if (sink_)
        sink_(incident);
}

void
AlertEngine::sealCapture(Incident &incident, Tick upTo)
{
    const Tick to = std::min(incident.contextUntil, upTo);

    // Deterministic context pick: the triggering signal first, then
    // the cluster-wide policy/PDU signals, then siblings that share
    // the signal's first dotted component ("rack3."), alphabetical,
    // capped at maxContextSeries.
    std::vector<std::string> picks;
    auto add = [&](std::string_view name) {
        if (picks.size() >= opts_.maxContextSeries)
            return;
        if (std::find(picks.begin(), picks.end(), name) != picks.end())
            return;
        if (recorder_.lastSeen(name) == kTickNever)
            return;
        picks.emplace_back(name);
    };
    add(incident.signal);
    add("policy.level");
    add("pdu.power");
    const std::string_view group = groupPrefix(incident.signal);
    if (!group.empty())
        for (const std::string &name : recorder_.signals())
            if (std::string_view(name).substr(0, group.size()) ==
                group)
                add(name);

    for (const std::string &name : picks)
        incident.context.push_back(IncidentSeries{
            name,
            recorder_.window(name, incident.contextFrom, to)});
}

void
AlertEngine::finalize(Tick endOfRun)
{
    PAD_ASSERT(!finalized_, "alert engine finalized twice");
    advanceTo(endOfRun);
    for (const std::size_t idx : openCaptures_) {
        sealCapture(incidents_[idx], now_);
        emitSealed(incidents_[idx]);
    }
    openCaptures_.clear();
    std::stable_sort(incidents_.begin(), incidents_.end(),
                     [](const Incident &a, const Incident &b) {
                         if (a.firingSince != b.firingSince)
                             return a.firingSince < b.firingSince;
                         if (a.rule != b.rule)
                             return a.rule < b.rule;
                         return a.signal < b.signal;
                     });
    finalized_ = true;
}

const std::vector<Incident> &
AlertEngine::incidents() const
{
    PAD_ASSERT(finalized_, "incidents() before finalize()");
    return incidents_;
}

std::vector<telemetry::AlertStateSample>
AlertEngine::ruleStates() const
{
    std::vector<telemetry::AlertStateSample> out;
    out.reserve(rules_.size());
    for (std::size_t k = 0; k < rules_.size(); ++k) {
        telemetry::AlertStateSample s;
        s.rule = rules_.rules[k].name;
        s.severity = severityName(rules_.rules[k].severity);
        for (const auto &[signal, inst] : instances_[k]) {
            const int state =
                inst.state == Instance::State::Firing    ? 2
                : inst.state == Instance::State::Pending ? 1
                                                         : 0;
            s.state = std::max(s.state, state);
        }
        s.fired = fired_[k];
        out.push_back(std::move(s));
    }
    return out;
}

} // namespace pad::alert
