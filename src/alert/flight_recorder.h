/**
 * @file
 * Flight recorder: bounded full-resolution sample history.
 *
 * Telemetry series roll up to 1-/5-minute buckets for live
 * exposition, which erases the sub-second µDEB shave spikes an
 * incident investigation needs. The flight recorder keeps the most
 * recent raw samples of every signal in a fixed-size ring — memory
 * bounded regardless of run length — so a firing alert can snapshot
 * a ±window of full-resolution context into its incident record.
 *
 * Not thread-safe: each AlertEngine owns one recorder and both are
 * driven from a single simulation thread (DESIGN.md §10).
 */

#ifndef PAD_ALERT_FLIGHT_RECORDER_H
#define PAD_ALERT_FLIGHT_RECORDER_H

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.h"

namespace pad::alert {

/** One retained observation. */
struct FlightSample {
    Tick when = 0;
    double value = 0.0;
};

class FlightRecorder
{
  public:
    /** Per-signal bounded history. */
    struct Ring {
        explicit Ring(std::size_t capacity) : capacity(capacity) {}

        void push(FlightSample s);

        std::size_t capacity;
        std::size_t head = 0;
        std::vector<FlightSample> buf;
    };

    /** @param capacity raw samples retained per signal. */
    explicit FlightRecorder(std::size_t capacity = 2048)
        : capacity_(capacity ? capacity : 1)
    {
    }

    /** Record one sample; @p when should be non-decreasing. */
    void record(std::string_view signal, Tick when, double value);

    /**
     * The ring of @p signal, created on first use. The reference
     * stays valid for the recorder's lifetime (map nodes are
     * stable), so per-signal callers can cache it and push without
     * repeating the name lookup.
     */
    Ring &ring(std::string_view signal);

    /**
     * Retained samples of @p signal with when in [from, to], in
     * chronological order. Empty when the signal is unknown or the
     * window predates everything still in the ring.
     */
    std::vector<FlightSample> window(std::string_view signal,
                                     Tick from, Tick to) const;

    /** Sorted names of every signal ever recorded. */
    std::vector<std::string> signals() const;

    /** Newest sample time of @p signal; kTickNever when unseen. */
    Tick lastSeen(std::string_view signal) const;

    /** Signals tracked. */
    std::size_t size() const { return rings_.size(); }

  private:
    std::size_t capacity_;
    /** std::map: deterministic iteration, stable node addresses. */
    std::map<std::string, Ring, std::less<>> rings_;
};

} // namespace pad::alert

#endif // PAD_ALERT_FLIGHT_RECORDER_H
