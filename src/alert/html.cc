#include "alert/html.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <ostream>
#include <sstream>

#include "util/json_writer.h"
#include "util/types.h"

namespace pad::alert {

namespace {

/** Deterministic short decimal for on-page numbers. */
std::string
fmt(double v)
{
    const double r = std::round(v * 1000.0) / 1000.0;
    return JsonWriter::formatDouble(r == 0.0 ? 0.0 : r);
}

/** Sim tick -> "1234.5s". */
std::string
fmtTick(Tick t)
{
    if (t == kTickNever)
        return "—";
    return fmt(ticksToSeconds(t)) + "s";
}

/** SVG coordinate: two decimals keep files small and stable. */
std::string
coord(double v)
{
    const double r = std::round(v * 100.0) / 100.0;
    return JsonWriter::formatDouble(r == 0.0 ? 0.0 : r);
}

constexpr double kSparkW = 300.0;
constexpr double kSparkH = 72.0;
constexpr double kPad = 6.0;

/**
 * One inline-SVG sparkline of @p samples over [from, to], with a
 * marker line at @p mark (the firing moment). Steps (rather than
 * slopes) when @p step is set — right for discrete levels.
 */
void
sparkline(std::ostream &os, const std::vector<FlightSample> &samples,
          Tick from, Tick to, Tick mark, bool step)
{
    os << "<svg viewBox=\"0 0 " << coord(kSparkW) << " "
       << coord(kSparkH) << "\" class=\"spark\">";
    if (samples.size() >= 2 && to > from) {
        double lo = samples[0].value;
        double hi = samples[0].value;
        for (const FlightSample &s : samples) {
            lo = std::min(lo, s.value);
            hi = std::max(hi, s.value);
        }
        if (hi - lo < 1e-12) {
            lo -= 0.5;
            hi += 0.5;
        }
        const double spanT = static_cast<double>(to - from);
        auto x = [&](Tick t) {
            return kPad + (kSparkW - 2.0 * kPad) *
                              static_cast<double>(t - from) / spanT;
        };
        auto y = [&](double v) {
            return kSparkH - kPad -
                   (kSparkH - 2.0 * kPad) * (v - lo) / (hi - lo);
        };
        if (mark >= from && mark <= to)
            os << "<line x1=\"" << coord(x(mark)) << "\" y1=\"0\" x2=\""
               << coord(x(mark)) << "\" y2=\"" << coord(kSparkH)
               << "\" class=\"mark\"/>";
        os << "<polyline points=\"";
        bool first = true;
        double prevY = 0.0;
        for (const FlightSample &s : samples) {
            if (!first) {
                os << " ";
                if (step)
                    os << coord(x(s.when)) << "," << coord(prevY)
                       << " ";
            }
            os << coord(x(s.when)) << "," << coord(y(s.value));
            prevY = y(s.value);
            first = false;
        }
        os << "\"/>";
        os << "<text x=\"" << coord(kPad) << "\" y=\"10\">"
           << htmlEscape(fmt(hi)) << "</text>";
        os << "<text x=\"" << coord(kPad) << "\" y=\""
           << coord(kSparkH - 1.0) << "\">" << htmlEscape(fmt(lo))
           << "</text>";
    } else {
        os << "<text x=\"" << coord(kSparkW / 2.0) << "\" y=\""
           << coord(kSparkH / 2.0)
           << "\" class=\"empty\">no context samples</text>";
    }
    os << "</svg>";
}

const char *kStyle = R"(
  body { font: 14px/1.45 -apple-system, "Segoe UI", sans-serif;
         margin: 1.5rem auto; max-width: 70rem; padding: 0 1rem;
         color: #1d2733; background: #f7f8fa; }
  h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
  .tiles { display: flex; flex-wrap: wrap; gap: .75rem; }
  .tile { background: #fff; border: 1px solid #dde2e8;
          border-radius: .5rem; padding: .6rem 1rem; min-width: 8rem; }
  .tile b { display: block; font-size: 1.3rem; }
  table { border-collapse: collapse; width: 100%; background: #fff; }
  th, td { border: 1px solid #dde2e8; padding: .35rem .6rem;
           text-align: left; font-size: .85rem; }
  th { background: #eef1f5; }
  .sev-critical { color: #b3261e; font-weight: 600; }
  .sev-warning { color: #9a6700; font-weight: 600; }
  .sev-info { color: #2a6fb0; }
  .card { background: #fff; border: 1px solid #dde2e8;
          border-radius: .5rem; padding: .8rem 1rem; margin: 1rem 0; }
  .card h3 { margin: 0 0 .3rem; font-size: 1rem; }
  .meta { color: #5a6676; font-size: .8rem; }
  .sparks { display: flex; flex-wrap: wrap; gap: .75rem;
            margin-top: .5rem; }
  .sparkbox { width: 300px; }
  .sparkbox .name { font-size: .75rem; color: #5a6676;
                    word-break: break-all; }
  svg.spark { width: 300px; height: 72px; background: #fbfcfd;
              border: 1px solid #e6eaef; }
  svg.spark polyline { fill: none; stroke: #2a6fb0;
                       stroke-width: 1.5; }
  svg.spark line.mark { stroke: #b3261e; stroke-width: 1;
                        stroke-dasharray: 3 2; }
  svg.spark text { font-size: 9px; fill: #8a94a0; }
  svg.spark text.empty { font-size: 11px; text-anchor: middle; }
)";

} // namespace

std::string
htmlEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '&':
            out += "&amp;";
            break;
          case '<':
            out += "&lt;";
            break;
          case '>':
            out += "&gt;";
            break;
          case '"':
            out += "&quot;";
            break;
          default:
            out += c;
        }
    }
    return out;
}

void
writeIncidentDashboard(std::ostream &os,
                       const std::vector<Incident> &incidents,
                       const DashboardOptions &opts)
{
    std::size_t critical = 0;
    std::size_t warning = 0;
    std::size_t info = 0;
    std::size_t unresolved = 0;
    Tick firstFiring = kTickNever;
    Tick lastFiring = kTickNever;
    // Policy-level timeline assembled from every incident's context
    // captures: the flight recorder snapshots "policy.level" around
    // each firing, so the union is exactly the monitored span.
    std::map<Tick, double> policy;
    for (const Incident &inc : incidents) {
        switch (inc.severity) {
          case Severity::Critical:
            ++critical;
            break;
          case Severity::Warning:
            ++warning;
            break;
          case Severity::Info:
            ++info;
            break;
        }
        if (inc.resolvedAt == kTickNever)
            ++unresolved;
        if (firstFiring == kTickNever ||
            inc.firingSince < firstFiring)
            firstFiring = inc.firingSince;
        if (lastFiring == kTickNever || inc.firingSince > lastFiring)
            lastFiring = inc.firingSince;
        for (const IncidentSeries &series : inc.context)
            if (series.signal == "policy.level")
                for (const FlightSample &s : series.samples)
                    policy[s.when] = s.value;
    }

    os << "<!doctype html>\n<html lang=\"en\">\n<head>\n"
       << "<meta charset=\"utf-8\">\n"
       << "<title>" << htmlEscape(opts.title) << "</title>\n"
       << "<style>" << kStyle << "</style>\n</head>\n<body>\n";
    os << "<h1>" << htmlEscape(opts.title) << "</h1>\n";

    os << "<div class=\"tiles\">\n"
       << "<div class=\"tile\"><b>" << incidents.size()
       << "</b>incidents</div>\n"
       << "<div class=\"tile\"><b class=\"sev-critical\">" << critical
       << "</b>critical</div>\n"
       << "<div class=\"tile\"><b class=\"sev-warning\">" << warning
       << "</b>warning</div>\n"
       << "<div class=\"tile\"><b class=\"sev-info\">" << info
       << "</b>info</div>\n"
       << "<div class=\"tile\"><b>" << unresolved
       << "</b>unresolved at end</div>\n"
       << "</div>\n";

    if (policy.size() >= 2) {
        os << "<h2>Policy level</h2>\n<div class=\"card\">"
           << "<div class=\"meta\">Security-policy level around the "
              "captured incidents (1 normal, 2 minor incident, 3 "
              "emergency)</div>";
        std::vector<FlightSample> samples;
        samples.reserve(policy.size());
        for (const auto &[when, value] : policy)
            samples.push_back(FlightSample{when, value});
        sparkline(os, samples, samples.front().when,
                  samples.back().when, kTickNever, true);
        os << "</div>\n";
    }

    os << "<h2>Incidents</h2>\n<table>\n<tr><th>id</th><th>severity"
       << "</th><th>rule</th><th>signal</th><th>fired</th>"
       << "<th>resolved</th><th>trigger</th><th>threshold</th>"
       << "</tr>\n";
    for (const Incident &inc : incidents) {
        const char *sev = severityName(inc.severity);
        os << "<tr><td>" << htmlEscape(inc.id())
           << "</td><td class=\"sev-" << sev << "\">" << sev
           << "</td><td>" << htmlEscape(inc.rule) << "</td><td>"
           << htmlEscape(inc.signal) << "</td><td>"
           << fmtTick(inc.firingSince) << "</td><td>"
           << fmtTick(inc.resolvedAt) << "</td><td>"
           << fmt(inc.triggerValue) << "</td><td>"
           << fmt(inc.threshold) << "</td></tr>\n";
    }
    os << "</table>\n";

    if (!incidents.empty())
        os << "<h2>Flight-recorder context</h2>\n";
    for (const Incident &inc : incidents) {
        os << "<div class=\"card\">\n<h3>" << htmlEscape(inc.id())
           << "</h3>\n<div class=\"meta\">";
        if (!inc.description.empty())
            os << htmlEscape(inc.description) << " — ";
        os << "pending " << fmtTick(inc.pendingSince) << ", fired "
           << fmtTick(inc.firingSince) << ", resolved "
           << fmtTick(inc.resolvedAt) << ", context "
           << fmtTick(inc.contextFrom) << " … "
           << fmtTick(inc.contextUntil) << "</div>\n"
           << "<div class=\"sparks\">\n";
        std::size_t shown = 0;
        for (const IncidentSeries &series : inc.context) {
            if (shown++ >= opts.maxSparklines)
                break;
            os << "<div class=\"sparkbox\"><div class=\"name\">"
               << htmlEscape(series.signal) << "</div>";
            sparkline(os, series.samples, inc.contextFrom,
                      inc.contextUntil, inc.firingSince,
                      series.signal == "policy.level");
            os << "</div>\n";
        }
        os << "</div>\n</div>\n";
    }

    os << "</body>\n</html>\n";
}

std::string
renderIncidentDashboard(const std::vector<Incident> &incidents,
                        const DashboardOptions &opts)
{
    std::ostringstream os;
    writeIncidentDashboard(os, incidents, opts);
    return os.str();
}

} // namespace pad::alert
