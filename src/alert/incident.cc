#include "alert/incident.h"

#include <fstream>
#include <sstream>

#include "util/json.h"
#include "util/json_writer.h"

namespace pad::alert {

std::string
Incident::id() const
{
    std::string out;
    if (job >= 0)
        out += "job" + std::to_string(job) + ".";
    out += rule + ":" + signal + "@" + std::to_string(firingSince);
    return out;
}

void
writeIncidentLine(std::ostream &os, const Incident &inc)
{
    {
        JsonWriter w(os);
        w.beginObject()
            .key("id").value(inc.id())
            .key("rule").value(inc.rule)
            .key("signal").value(inc.signal)
            .key("severity").value(severityName(inc.severity))
            .key("predicate").value(predicateName(inc.predicate))
            .key("job").value(inc.job)
            .key("pending_ts").value(static_cast<std::int64_t>(
                inc.pendingSince))
            .key("firing_ts").value(static_cast<std::int64_t>(
                inc.firingSince))
            .key("resolved_ts").value(static_cast<std::int64_t>(
                inc.resolvedAt))
            .key("trigger_value").value(inc.triggerValue)
            .key("threshold").value(inc.threshold)
            .key("context_from").value(static_cast<std::int64_t>(
                inc.contextFrom))
            .key("context_until").value(static_cast<std::int64_t>(
                inc.contextUntil));
        w.key("context").beginArray();
        for (const IncidentSeries &series : inc.context) {
            w.beginObject().key("signal").value(series.signal);
            w.key("samples").beginArray();
            for (const FlightSample &s : series.samples)
                w.beginArray()
                    .value(static_cast<std::int64_t>(s.when))
                    .value(s.value)
                    .endArray();
            w.endArray().endObject();
        }
        w.endArray();
        if (!inc.description.empty())
            w.key("description").value(inc.description);
        w.endObject();
    }
    os << "\n" << std::flush;
}

void
writeIncidentsJsonl(std::ostream &os,
                    const std::vector<Incident> &incidents)
{
    for (const Incident &inc : incidents)
        writeIncidentLine(os, inc);
}

std::string
renderIncidentsJsonl(const std::vector<Incident> &incidents)
{
    std::ostringstream os;
    writeIncidentsJsonl(os, incidents);
    return os.str();
}

namespace {

bool
parseIncidentLine(const JsonValue &node, Incident &out,
                  std::string &what)
{
    if (!node.isObject()) {
        what = "incident must be an object";
        return false;
    }
    auto str = [&](const char *key, std::string &dst,
                   bool required) -> bool {
        const JsonValue *v = node.find(key);
        if (!v) {
            if (required)
                what = std::string("missing \"") + key + "\"";
            return !required;
        }
        if (!v->isString()) {
            what = std::string("\"") + key + "\" must be a string";
            return false;
        }
        dst = v->str;
        return true;
    };
    auto num = [&](const char *key, double &dst) -> bool {
        const JsonValue *v = node.find(key);
        if (!v || !v->isNumber()) {
            what = std::string("missing numeric \"") + key + "\"";
            return false;
        }
        dst = v->number;
        return true;
    };
    auto tick = [&](const char *key, Tick &dst) -> bool {
        double d = 0.0;
        if (!num(key, d))
            return false;
        dst = static_cast<Tick>(d);
        return true;
    };

    std::string severity, predicate;
    if (!str("rule", out.rule, true) ||
        !str("signal", out.signal, true) ||
        !str("severity", severity, true) ||
        !str("predicate", predicate, true) ||
        !str("description", out.description, false))
        return false;
    const auto sev = severityFromName(severity);
    if (!sev) {
        what = "unknown severity: " + severity;
        return false;
    }
    out.severity = *sev;
    const auto pred = predicateFromName(predicate);
    if (!pred) {
        what = "unknown predicate: " + predicate;
        return false;
    }
    out.predicate = *pred;

    double job = -1.0;
    if (!num("job", job))
        return false;
    out.job = static_cast<int>(job);
    if (!tick("pending_ts", out.pendingSince) ||
        !tick("firing_ts", out.firingSince) ||
        !tick("resolved_ts", out.resolvedAt) ||
        !num("trigger_value", out.triggerValue) ||
        !num("threshold", out.threshold) ||
        !tick("context_from", out.contextFrom) ||
        !tick("context_until", out.contextUntil))
        return false;

    const JsonValue *context = node.find("context");
    if (!context || !context->isArray()) {
        what = "missing \"context\" array";
        return false;
    }
    for (const JsonValue &entry : context->array) {
        IncidentSeries series;
        if (!entry.isObject()) {
            what = "context entry must be an object";
            return false;
        }
        const JsonValue *signal = entry.find("signal");
        const JsonValue *samples = entry.find("samples");
        if (!signal || !signal->isString() || !samples ||
            !samples->isArray()) {
            what = "context entry needs \"signal\" and \"samples\"";
            return false;
        }
        series.signal = signal->str;
        for (const JsonValue &pair : samples->array) {
            if (!pair.isArray() || pair.array.size() != 2 ||
                !pair.array[0].isNumber() ||
                !pair.array[1].isNumber()) {
                what = "sample must be a [ts, value] pair";
                return false;
            }
            series.samples.push_back(FlightSample{
                static_cast<Tick>(pair.array[0].number),
                pair.array[1].number});
        }
        out.context.push_back(std::move(series));
    }
    return true;
}

} // namespace

std::optional<std::vector<Incident>>
readIncidentsJsonl(std::string_view text, std::string *error)
{
    std::vector<Incident> out;
    std::size_t lineNo = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t eol = text.find('\n', pos);
        const std::string_view line =
            text.substr(pos, eol == std::string_view::npos
                                 ? std::string_view::npos
                                 : eol - pos);
        pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
        ++lineNo;
        if (line.empty())
            continue;

        std::string what;
        const auto node = parseJson(line, &what);
        Incident inc;
        if (!node || !parseIncidentLine(*node, inc, what)) {
            if (error)
                *error = "line " + std::to_string(lineNo) + ": " +
                         what;
            return std::nullopt;
        }
        out.push_back(std::move(inc));
    }
    return out;
}

std::optional<std::vector<Incident>>
readIncidentsFile(const std::string &path, std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        if (error)
            *error = "cannot open incidents file: " + path;
        return std::nullopt;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    auto out = readIncidentsJsonl(buf.str(), error);
    if (!out && error)
        *error = path + ": " + *error;
    return out;
}

} // namespace pad::alert
