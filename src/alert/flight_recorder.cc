#include "alert/flight_recorder.h"

namespace pad::alert {

void
FlightRecorder::Ring::push(FlightSample s)
{
    if (buf.size() < capacity) {
        buf.push_back(s);
        return;
    }
    buf[head] = s;
    if (++head == capacity)
        head = 0;
}

FlightRecorder::Ring &
FlightRecorder::ring(std::string_view signal)
{
    auto it = rings_.find(signal);
    if (it == rings_.end())
        it = rings_.emplace(std::string(signal), Ring(capacity_)).first;
    return it->second;
}

void
FlightRecorder::record(std::string_view signal, Tick when,
                       double value)
{
    ring(signal).push(FlightSample{when, value});
}

std::vector<FlightSample>
FlightRecorder::window(std::string_view signal, Tick from,
                       Tick to) const
{
    std::vector<FlightSample> out;
    const auto it = rings_.find(signal);
    if (it == rings_.end())
        return out;
    const Ring &ring = it->second;
    for (std::size_t k = 0; k < ring.buf.size(); ++k) {
        const FlightSample &s =
            ring.buf[(ring.head + k) % ring.buf.size()];
        if (s.when >= from && s.when <= to)
            out.push_back(s);
    }
    return out;
}

std::vector<std::string>
FlightRecorder::signals() const
{
    std::vector<std::string> out;
    out.reserve(rings_.size());
    for (const auto &[name, ring] : rings_)
        out.push_back(name);
    return out;
}

Tick
FlightRecorder::lastSeen(std::string_view signal) const
{
    const auto it = rings_.find(signal);
    if (it == rings_.end() || it->second.buf.empty())
        return kTickNever;
    const Ring &ring = it->second;
    const std::size_t newest =
        (ring.head + ring.buf.size() - 1) % ring.buf.size();
    return ring.buf[newest].when;
}

} // namespace pad::alert
