/**
 * @file
 * Deterministic session records for the padd live service
 * (DESIGN.md §13).
 *
 * A padd session is a simulation run plus a sequence of external
 * inputs (control commands) that arrived while it was live. Every
 * input is stamped with the sim-time tick at which the daemon
 * applied it, so the session is a pure function of (configuration,
 * command sequence): `padd --replay session.jsonl` re-executes the
 * same engine calls at the same ticks and produces byte-identical
 * incidents, stats and telemetry artifacts — the project's standing
 * parallel==serial determinism discipline extended to interactive
 * wall-clock sessions.
 *
 * The record is JSONL, one self-contained object per line, written
 * line-buffered (flushed per line) so a crash or `tail -f` never
 * sees a truncated record:
 *
 *   {"type":"header","version":1,"tool":"padd",
 *    "config":{...ServiceConfig...},"rules":"<rules JSON text>"}
 *   {"type":"cmd","seq":0,"tick":99900000,"name":"inject-attack",
 *    "spec":{...AttackSpec...}}
 *   {"type":"cmd","seq":1,"tick":100200000,"name":"shutdown"}
 *   {"type":"end","tick":100200000}
 *
 * The alert rules text is embedded verbatim in the header so a
 * session file is self-contained: replay does not depend on the
 * rules file still existing (or still having the same content).
 *
 * Wall-clock-only commands (pause/resume/set-speed) are recorded
 * too — they document the operator's session — but replay applies
 * them as no-ops: they change when things happened in wall time,
 * never what happened in sim time.
 */

#ifndef PAD_SERVICE_SESSION_H
#define PAD_SERVICE_SESSION_H

#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "attack/attacker.h"
#include "attack/power_virus.h"
#include "attack/virus_trace.h"
#include "core/schemes.h"
#include "engine/backend.h"
#include "util/json.h"
#include "util/types.h"

namespace pad::service {

/** Static configuration of one padd session (the header payload). */
struct ServiceConfig {
    core::SchemeKind scheme = core::SchemeKind::Pad;
    engine::BackendKind backend = engine::BackendKind::Optimized;
    /** Per-rack soft-budget fraction (padsim --budget). */
    double budget = 0.75;
    /** Cluster budget fraction (padsim --cluster-budget). */
    double clusterBudget = 0.70;
    /** Warmup: the service goes live at day 1 + this hour. */
    double hour = 11.0;
    /** Synthetic-trace length in days; demand flatlines past it. */
    double days = 2.0;
    /**
     * Auto-shutdown after this many simulated seconds of live
     * service; 0 = run until a shutdown command arrives.
     */
    double durationSec = 0.0;
    std::uint64_t seed = 42;
    /** Detector-triggered capping response (padsim --detector). */
    bool detector = false;
};

/** One scenario injection: a power virus against the live fleet. */
struct AttackSpec {
    attack::VirusKind virus = attack::VirusKind::CpuIntensive;
    attack::AttackStyle style = attack::AttackStyle::Dense;
    /** Attacker-controlled servers per victim rack. */
    int nodes = 4;
    /** Victim racks (primary + extras by descending load). */
    int racks = 8;
    /** Attack-window length, seconds. */
    double durationSec = 1500.0;
    /** Load percentile of the primary victim rack. */
    double victimPct = 90.0;
    /** Attacker RNG seed. */
    std::uint64_t seed = 42;
};

/** One recorded external input, stamped with its apply tick. */
struct SessionCommand {
    /** Monotonic sequence number within the session. */
    std::uint64_t seq = 0;
    /** Sim tick the daemon applied the command at. */
    Tick tick = 0;
    /** "inject-attack", "pause", "resume", "set-speed", "shutdown". */
    std::string name;
    /** inject-attack payload. */
    std::optional<AttackSpec> spec;
    /** set-speed payload: sim-seconds per wall second; 0 = max. */
    double speed = 0.0;
};

/** A fully parsed session record. */
struct SessionLog {
    ServiceConfig config;
    /** Verbatim alert-rules JSON text; empty = alerting off. */
    std::string rules;
    std::vector<SessionCommand> commands;
    /** Tick the session ended at (the "end" line). */
    Tick endTick = 0;
};

/** Serialize @p spec as a JSON object ({"virus":...}). */
std::string renderAttackSpec(const AttackSpec &spec);

/**
 * Parse an inject-attack spec object (all fields optional, padsim
 * defaults apply). Returns nullopt with a message on a malformed or
 * out-of-range field — specs arrive over the control channel, so
 * validation errors must be reportable, not fatal.
 */
std::optional<AttackSpec> parseAttackSpec(std::string_view text,
                                          std::string *error = nullptr);

/**
 * parseAttackSpec() over an already-parsed JSON node — the control
 * channel embeds the spec as a sub-object of the command line.
 */
std::optional<AttackSpec> parseAttackSpecValue(const JsonValue &node,
                                               std::string *error = nullptr);

/**
 * Streaming session writer. Each write emits one line and flushes;
 * the file is valid (replayable up to its last line) at all times.
 */
class SessionWriter
{
  public:
    /** Open @p path for writing; ok() is false on failure. */
    explicit SessionWriter(const std::string &path);

    bool ok() const { return static_cast<bool>(os_); }

    void writeHeader(const ServiceConfig &config,
                     const std::string &rulesText);
    void writeCommand(const SessionCommand &cmd);
    void writeEnd(Tick tick);

  private:
    std::ofstream os_;
};

/**
 * Parse a session file. Strict, like the incidents reader: every
 * line must be a well-formed record of a known type, the header
 * must come first, and the end line (when present) must be last.
 * Returns nullopt with a line-numbered message on failure.
 */
std::optional<SessionLog> parseSession(std::string_view text,
                                       std::string *error = nullptr);

/** parseSession() over the contents of @p path. */
std::optional<SessionLog> readSessionFile(const std::string &path,
                                          std::string *error = nullptr);

/** Spelling helpers shared by the session codec and the CLIs. */
const char *virusName(attack::VirusKind kind);
std::optional<attack::VirusKind> virusFromName(std::string_view name);
const char *styleName(attack::AttackStyle style);
std::optional<attack::AttackStyle>
styleFromName(std::string_view name);

} // namespace pad::service

#endif // PAD_SERVICE_SESSION_H
