#include "service/control.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace pad::service {

namespace {

bool
sendAll(int fd, const std::string &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n =
            ::send(fd, data.data() + sent, data.size() - sent, 0);
        if (n <= 0)
            return false;
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

ControlServer::ControlServer(int port, Handler handler)
    : requestedPort_(port), handler_(std::move(handler))
{
}

ControlServer::~ControlServer()
{
    stop();
}

bool
ControlServer::start(std::string *error)
{
    auto fail = [&](const std::string &what) {
        if (error)
            *error = what + ": " + std::strerror(errno);
        if (listenFd_ >= 0) {
            ::close(listenFd_);
            listenFd_ = -1;
        }
        return false;
    };

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return fail("socket");
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port =
        htons(static_cast<std::uint16_t>(requestedPort_));
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0)
        return fail("bind");
    if (::listen(listenFd_, 4) < 0)
        return fail("listen");

    socklen_t len = sizeof(addr);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                      &len) == 0)
        port_ = ntohs(addr.sin_port);

    stop_ = false;
    thread_ = std::thread([this] { serveLoop(); });
    running_ = true;
    return true;
}

void
ControlServer::stop()
{
    if (!running_)
        return;
    stop_ = true;
    if (thread_.joinable())
        thread_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    running_ = false;
}

void
ControlServer::serveLoop()
{
    while (!stop_) {
        pollfd pfd{};
        pfd.fd = listenFd_;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, 100 /* ms */);
        if (ready <= 0)
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        handleConnection(fd);
        ::close(fd);
    }
}

void
ControlServer::handleConnection(int fd)
{
    std::string buffer;
    char chunk[1024];
    while (!stop_) {
        // Serve every complete line already buffered before reading
        // more; one response line per command line, in order.
        std::size_t nl;
        while ((nl = buffer.find('\n')) != std::string::npos) {
            std::string line = buffer.substr(0, nl);
            buffer.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (line.empty())
                continue;
            const std::string response =
                handler_ ? handler_(line) : std::string("{}");
            if (!sendAll(fd, response + "\n"))
                return;
        }

        pollfd pfd{};
        pfd.fd = fd;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, 100 /* ms */);
        if (ready < 0)
            return;
        if (ready == 0)
            continue;
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            return; // client closed (or error): connection done
        buffer.append(chunk, static_cast<std::size_t>(n));
        if (buffer.size() > 1 << 20)
            return; // a megabyte without a newline is not a command
    }
}

ControlClient::~ControlClient()
{
    close();
}

bool
ControlClient::connect(int port, std::string *error)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        if (error)
            *error = std::string("connect: ") + std::strerror(errno);
        close();
        return false;
    }
    return true;
}

void
ControlClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buffer_.clear();
}

std::optional<std::string>
ControlClient::request(const std::string &line, int timeoutMs)
{
    if (fd_ < 0)
        return std::nullopt;
    if (!sendAll(fd_, line + "\n"))
        return std::nullopt;

    char chunk[1024];
    for (;;) {
        const std::size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            std::string response = buffer_.substr(0, nl);
            buffer_.erase(0, nl + 1);
            if (!response.empty() && response.back() == '\r')
                response.pop_back();
            return response;
        }
        pollfd pfd{};
        pfd.fd = fd_;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, timeoutMs);
        if (ready <= 0)
            return std::nullopt;
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n <= 0)
            return std::nullopt;
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }
}

} // namespace pad::service
