#include "service/session.h"

#include <sstream>

#include "util/json.h"
#include "util/json_writer.h"

namespace pad::service {

const char *
virusName(attack::VirusKind kind)
{
    switch (kind) {
      case attack::VirusKind::CpuIntensive:
        return "cpu";
      case attack::VirusKind::MemIntensive:
        return "mem";
      case attack::VirusKind::IoIntensive:
        return "io";
    }
    return "cpu";
}

std::optional<attack::VirusKind>
virusFromName(std::string_view name)
{
    if (name == "cpu")
        return attack::VirusKind::CpuIntensive;
    if (name == "mem")
        return attack::VirusKind::MemIntensive;
    if (name == "io")
        return attack::VirusKind::IoIntensive;
    return std::nullopt;
}

const char *
styleName(attack::AttackStyle style)
{
    return style == attack::AttackStyle::Sparse ? "sparse" : "dense";
}

std::optional<attack::AttackStyle>
styleFromName(std::string_view name)
{
    if (name == "dense")
        return attack::AttackStyle::Dense;
    if (name == "sparse")
        return attack::AttackStyle::Sparse;
    return std::nullopt;
}

namespace {

void
writeAttackSpec(JsonWriter &w, const AttackSpec &spec)
{
    w.beginObject()
        .key("virus").value(virusName(spec.virus))
        .key("style").value(styleName(spec.style))
        .key("nodes").value(spec.nodes)
        .key("racks").value(spec.racks)
        .key("duration_sec").value(spec.durationSec)
        .key("victim_pct").value(spec.victimPct)
        .key("seed").value(static_cast<std::uint64_t>(spec.seed))
        .endObject();
}

bool
parseAttackSpecNode(const JsonValue &node, AttackSpec &out,
                    std::string &what)
{
    if (!node.isObject()) {
        what = "attack spec must be an object";
        return false;
    }
    for (const auto &[key, value] : node.members) {
        if (key == "virus" || key == "style") {
            if (!value.isString()) {
                what = "\"" + key + "\" must be a string";
                return false;
            }
        } else if (!value.isNumber()) {
            what = "\"" + key + "\" must be a number";
            return false;
        }
        if (key == "virus") {
            const auto v = virusFromName(value.str);
            if (!v) {
                what = "unknown virus \"" + value.str + "\"";
                return false;
            }
            out.virus = *v;
        } else if (key == "style") {
            const auto s = styleFromName(value.str);
            if (!s) {
                what = "unknown style \"" + value.str + "\"";
                return false;
            }
            out.style = *s;
        } else if (key == "nodes") {
            out.nodes = static_cast<int>(value.number);
        } else if (key == "racks") {
            out.racks = static_cast<int>(value.number);
        } else if (key == "duration_sec") {
            out.durationSec = value.number;
        } else if (key == "victim_pct") {
            out.victimPct = value.number;
        } else if (key == "seed") {
            out.seed = static_cast<std::uint64_t>(value.number);
        } else {
            what = "unknown attack-spec key \"" + key + "\"";
            return false;
        }
    }
    if (out.nodes < 1 || out.nodes > 10 || out.racks < 1 ||
        out.racks > 22 || out.durationSec <= 0.0 ||
        out.victimPct < 0.0 || out.victimPct > 100.0) {
        what = "attack spec out of range (nodes 1-10, racks 1-22, "
               "duration_sec > 0, victim_pct 0-100)";
        return false;
    }
    return true;
}

void
writeConfig(JsonWriter &w, const ServiceConfig &config)
{
    w.beginObject()
        .key("scheme").value(core::schemeName(config.scheme))
        .key("backend").value(engine::backendName(config.backend))
        .key("budget").value(config.budget)
        .key("cluster_budget").value(config.clusterBudget)
        .key("hour").value(config.hour)
        .key("days").value(config.days)
        .key("duration_sec").value(config.durationSec)
        .key("seed").value(static_cast<std::uint64_t>(config.seed))
        .key("detector").value(config.detector)
        .endObject();
}

bool
parseConfigNode(const JsonValue &node, ServiceConfig &out,
                std::string &what)
{
    if (!node.isObject()) {
        what = "\"config\" must be an object";
        return false;
    }
    for (const auto &[key, value] : node.members) {
        if (key == "scheme") {
            const auto s =
                value.isString() ? core::schemeFromName(value.str)
                                 : std::nullopt;
            if (!s) {
                what = "unknown scheme";
                return false;
            }
            out.scheme = *s;
        } else if (key == "backend") {
            const auto b =
                value.isString() ? engine::backendFromName(value.str)
                                 : std::nullopt;
            if (!b) {
                what = "unknown backend";
                return false;
            }
            out.backend = *b;
        } else if (key == "detector") {
            if (!value.isBool()) {
                what = "\"detector\" must be a bool";
                return false;
            }
            out.detector = value.boolean;
        } else if (!value.isNumber()) {
            what = "\"" + key + "\" must be a number";
            return false;
        } else if (key == "budget") {
            out.budget = value.number;
        } else if (key == "cluster_budget") {
            out.clusterBudget = value.number;
        } else if (key == "hour") {
            out.hour = value.number;
        } else if (key == "days") {
            out.days = value.number;
        } else if (key == "duration_sec") {
            out.durationSec = value.number;
        } else if (key == "seed") {
            out.seed = static_cast<std::uint64_t>(value.number);
        } else {
            what = "unknown config key \"" + key + "\"";
            return false;
        }
    }
    return true;
}

} // namespace

std::string
renderAttackSpec(const AttackSpec &spec)
{
    std::ostringstream os;
    JsonWriter w(os);
    writeAttackSpec(w, spec);
    return os.str();
}

std::optional<AttackSpec>
parseAttackSpec(std::string_view text, std::string *error)
{
    std::string what;
    const auto node = parseJson(text, &what);
    if (!node) {
        if (error)
            *error = "attack spec: " + what;
        return std::nullopt;
    }
    AttackSpec spec;
    if (!parseAttackSpecNode(*node, spec, what)) {
        if (error)
            *error = "attack spec: " + what;
        return std::nullopt;
    }
    return spec;
}

std::optional<AttackSpec>
parseAttackSpecValue(const JsonValue &node, std::string *error)
{
    AttackSpec spec;
    std::string what;
    if (!parseAttackSpecNode(node, spec, what)) {
        if (error)
            *error = "attack spec: " + what;
        return std::nullopt;
    }
    return spec;
}

SessionWriter::SessionWriter(const std::string &path) : os_(path)
{
}

void
SessionWriter::writeHeader(const ServiceConfig &config,
                           const std::string &rulesText)
{
    JsonWriter w(os_);
    w.beginObject()
        .key("type").value("header")
        .key("version").value(1)
        .key("tool").value("padd")
        .key("config");
    writeConfig(w, config);
    w.key("rules").value(rulesText).endObject();
    os_ << "\n" << std::flush;
}

void
SessionWriter::writeCommand(const SessionCommand &cmd)
{
    JsonWriter w(os_);
    w.beginObject()
        .key("type").value("cmd")
        .key("seq").value(static_cast<std::uint64_t>(cmd.seq))
        .key("tick").value(static_cast<std::int64_t>(cmd.tick))
        .key("name").value(cmd.name);
    if (cmd.spec) {
        w.key("spec");
        writeAttackSpec(w, *cmd.spec);
    }
    if (cmd.name == "set-speed")
        w.key("speed").value(cmd.speed);
    w.endObject();
    os_ << "\n" << std::flush;
}

void
SessionWriter::writeEnd(Tick tick)
{
    JsonWriter w(os_);
    w.beginObject()
        .key("type").value("end")
        .key("tick").value(static_cast<std::int64_t>(tick))
        .endObject();
    os_ << "\n" << std::flush;
}

std::optional<SessionLog>
parseSession(std::string_view text, std::string *error)
{
    auto fail = [&](std::size_t lineNo, const std::string &what)
        -> std::optional<SessionLog> {
        if (error)
            *error = "session line " + std::to_string(lineNo) + ": " +
                     what;
        return std::nullopt;
    };

    SessionLog log;
    bool sawHeader = false;
    bool sawEnd = false;
    std::size_t lineNo = 0;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t nl = text.find('\n', pos);
        if (nl == std::string_view::npos)
            nl = text.size();
        const std::string_view line = text.substr(pos, nl - pos);
        pos = nl + 1;
        ++lineNo;
        if (line.empty())
            continue;
        if (sawEnd)
            return fail(lineNo, "record after \"end\"");

        std::string what;
        const auto node = parseJson(line, &what);
        if (!node)
            return fail(lineNo, what);
        const JsonValue *type = node->find("type");
        if (!type || !type->isString())
            return fail(lineNo, "missing \"type\"");

        if (type->str == "header") {
            if (sawHeader)
                return fail(lineNo, "duplicate header");
            const JsonValue *version = node->find("version");
            if (!version || !version->isNumber() ||
                version->number != 1.0)
                return fail(lineNo, "unsupported session version");
            const JsonValue *config = node->find("config");
            if (!config)
                return fail(lineNo, "missing \"config\"");
            if (!parseConfigNode(*config, log.config, what))
                return fail(lineNo, what);
            if (const JsonValue *rules = node->find("rules")) {
                if (!rules->isString())
                    return fail(lineNo, "\"rules\" must be a string");
                log.rules = rules->str;
            }
            sawHeader = true;
            continue;
        }
        if (!sawHeader)
            return fail(lineNo, "first record must be the header");

        if (type->str == "cmd") {
            SessionCommand cmd;
            const JsonValue *seq = node->find("seq");
            const JsonValue *tick = node->find("tick");
            const JsonValue *name = node->find("name");
            if (!seq || !seq->isNumber() || !tick ||
                !tick->isNumber() || !name || !name->isString())
                return fail(lineNo, "cmd needs seq/tick/name");
            cmd.seq = static_cast<std::uint64_t>(seq->number);
            cmd.tick = static_cast<Tick>(tick->number);
            cmd.name = name->str;
            if (cmd.name == "inject-attack") {
                const JsonValue *spec = node->find("spec");
                if (!spec)
                    return fail(lineNo, "inject-attack needs a spec");
                AttackSpec parsed;
                if (!parseAttackSpecNode(*spec, parsed, what))
                    return fail(lineNo, what);
                cmd.spec = parsed;
            } else if (cmd.name == "set-speed") {
                const JsonValue *speed = node->find("speed");
                if (!speed || !speed->isNumber())
                    return fail(lineNo, "set-speed needs a speed");
                cmd.speed = speed->number;
            } else if (cmd.name != "pause" && cmd.name != "resume" &&
                       cmd.name != "shutdown") {
                return fail(lineNo,
                            "unknown command \"" + cmd.name + "\"");
            }
            if (!log.commands.empty() &&
                (cmd.tick < log.commands.back().tick ||
                 cmd.seq != log.commands.back().seq + 1))
                return fail(lineNo, "commands out of order");
            log.commands.push_back(std::move(cmd));
            continue;
        }
        if (type->str == "end") {
            const JsonValue *tick = node->find("tick");
            if (!tick || !tick->isNumber())
                return fail(lineNo, "end needs a tick");
            log.endTick = static_cast<Tick>(tick->number);
            sawEnd = true;
            continue;
        }
        return fail(lineNo, "unknown type \"" + type->str + "\"");
    }
    if (!sawHeader)
        return fail(lineNo, "no header record");
    if (!sawEnd) {
        // A session cut short (crash, kill) is still replayable up
        // to its last recorded input.
        log.endTick = log.commands.empty() ? 0
                                           : log.commands.back().tick;
    }
    return log;
}

std::optional<SessionLog>
readSessionFile(const std::string &path, std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        if (error)
            *error = "cannot open session file: " + path;
        return std::nullopt;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    return parseSession(buf.str(), error);
}

} // namespace pad::service
