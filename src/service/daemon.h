/**
 * @file
 * The padd service daemon: a live, wall-clock-paced PAD simulation
 * with streaming observability and deterministic session
 * record/replay (DESIGN.md §13).
 *
 * ServiceDaemon drives one ClusterEngine coarse step at a time,
 * paced against the wall clock by a configurable speed factor
 * (sim-seconds per wall-second; 0 = as fast as the hardware
 * allows). While the run is live it:
 *
 *  - serves the Prometheus endpoint continuously (MetricsHttpServer
 *    rendering the live TelemetryHub plus pad_service_* gauges);
 *  - evaluates the alert rules online and streams each incident to
 *    incidents.jsonl the moment its flight-recorder context seals
 *    (line-buffered, so `tail -f` and `padtrace incidents --follow`
 *    see whole records);
 *  - accepts control commands over a localhost line-JSON socket:
 *    status, pause, resume, set-speed, inject-attack, shutdown.
 *
 * Determinism contract: commands are applied only on the simulation
 * thread, at step boundaries, and every applied command is stamped
 * with its sim tick into the session record (service/session.h).
 * Wall time never reaches the simulation — it only decides when the
 * next step runs — so replaySession() re-executing the recorded
 * session produces byte-identical incidents.jsonl, stats JSON and
 * Prometheus dumps to the live run.
 *
 * Threading: the simulation (run()) owns the engine, alert engine
 * and all files. The control thread hands commands over through
 * submitCommand(), which blocks until the simulation thread applied
 * the command and built the response. The metrics thread reads only
 * the mutex-guarded hub, service atomics, and the stats registry
 * pointer published (once, release/acquire) at shutdown.
 */

#ifndef PAD_SERVICE_DAEMON_H
#define PAD_SERVICE_DAEMON_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>

#include "service/session.h"
#include "util/types.h"

namespace pad::telemetry {
class MetricsHttpServer;
class RemoteWriteShipper;
} // namespace pad::telemetry

namespace pad::service {

/** Everything a daemon run needs beyond the sim configuration. */
struct DaemonOptions {
    ServiceConfig config;
    /** Alert rules JSON text (verbatim); empty = alerting off. */
    std::string rulesText;
    /** Sim-seconds per wall-second; 0 = max speed (no pacing). */
    double speed = 1.0;
    /** Metrics endpoint port (0 = ephemeral, -1 = off). */
    int metricsPort = 0;
    /** Control endpoint port (0 = ephemeral, -1 = off). */
    int controlPort = 0;
    /** Session record path; empty = don't record. */
    std::string sessionPath;
    /** Streaming incidents path (requires rules); empty = off. */
    std::string incidentsPath;
    /** Final stats registry dump; empty = off. */
    std::string statsJsonPath;
    /** Final Prometheus exposition dump; empty = off. */
    std::string promPath;
    /** Run manifest (includes the session pointer); empty = off. */
    std::string manifestPath;
    /** Remote-write push target (HOST:PORT); empty = push off. */
    std::string pushTo;
    /** Sim-time push snapshot interval in seconds. */
    double pushIntervalS = 60.0;
    /** Push spool (WAL) directory; empty = no disk spill. */
    std::string pushSpoolDir;
    /** Source label for pushed series (fleet.<source>.*). */
    std::string pushSource = "padd";
};

/** Summary of a completed session (live or replayed). */
struct DaemonResult {
    Tick endTick = 0;
    /** Attacks injected over the session. */
    std::uint64_t attacks = 0;
    /** Incidents sealed (streamed) over the session. */
    std::uint64_t incidents = 0;
    /** External commands applied (status queries excluded). */
    std::uint64_t commands = 0;
};

class SessionRuntime;

class ServiceDaemon
{
  public:
    explicit ServiceDaemon(DaemonOptions opts);
    ~ServiceDaemon();

    ServiceDaemon(const ServiceDaemon &) = delete;
    ServiceDaemon &operator=(const ServiceDaemon &) = delete;

    /**
     * Build the simulation, open every output file and bind both
     * endpoints. Any failure — a bad rules document, an unwritable
     * path, a port that cannot be bound — is reported as a one-line
     * @p error and the daemon must not be run: a service whose
     * scrape or control endpoint is silently dead is worse than one
     * that fails fast.
     */
    bool start(std::string *error = nullptr);

    /**
     * The blocking service loop: warm the fleet up to the
     * configured hour, then step in wall-clock pace until a
     * shutdown command, requestShutdown(), or the configured
     * duration limit; finally finalize alerts, write artifacts and
     * stop both endpoints. Call exactly once, after start().
     */
    void run();

    /** Resolved endpoint ports, valid after start(). */
    int controlPort() const;
    int metricsPort() const;

    /**
     * Hand one command line to the simulation thread and wait for
     * its response line. Thread-safe; used by the control server
     * and callable directly (tests, in-process drivers).
     */
    std::string submitCommand(const std::string &line);

    /** Ask the loop to stop (signal handlers, tests). Thread-safe. */
    void requestShutdown();

    /** Session summary, valid after run() returns. */
    const DaemonResult &result() const { return result_; }

  private:
    struct Pending {
        std::string line;
        std::promise<std::string> response;
    };

    void processPending();
    std::string applyCommand(const std::string &line);
    std::string renderMetrics() const;

    DaemonOptions opts_;
    std::unique_ptr<SessionRuntime> runtime_;
    std::unique_ptr<class ControlServer> control_;
    std::unique_ptr<telemetry::MetricsHttpServer> metrics_;
    // Declared after runtime_: destroyed first, so the shipper can
    // never outlive the hub it snapshots.
    std::unique_ptr<telemetry::RemoteWriteShipper> shipper_;
    std::unique_ptr<SessionWriter> session_;

    // Command hand-off: control thread -> simulation thread.
    std::mutex qmu_;
    std::condition_variable qcv_;
    std::deque<std::shared_ptr<Pending>> queue_;
    bool stopped_ = false;

    // Live state owned by the simulation thread.
    bool paused_ = false;
    double speed_ = 1.0;
    bool shutdownCmd_ = false;
    /** Set by commands that invalidate the pacing anchor. */
    bool reanchor_ = false;
    std::uint64_t seq_ = 0;
    std::atomic<bool> shutdownRequested_{false};

    // Scrape-visible mirrors (written by the simulation thread,
    // read by the metrics thread).
    std::atomic<std::int64_t> tickGauge_{0};
    std::atomic<bool> pausedGauge_{false};
    std::atomic<double> speedGauge_{1.0};
    std::atomic<std::uint64_t> attacksGauge_{0};
    std::atomic<std::uint64_t> incidentsGauge_{0};
    std::atomic<const sim::StatsRegistry *> scrapeStats_{nullptr};

    DaemonResult result_;
    bool started_ = false;
    bool ran_ = false;
};

/** Replay artifact destinations (any may be empty = skip). */
struct ReplayArtifacts {
    std::string incidentsPath;
    std::string statsJsonPath;
    std::string promPath;
    /**
     * Optional remote-write target: the replay re-ships the exact
     * batch stream the live run shipped (push batches are cut by sim
     * tick, so a receiver fed from two replays of one session merges
     * byte-identically).
     */
    std::string pushTo;
    double pushIntervalS = 60.0;
    std::string pushSpoolDir;
    std::string pushSource = "padd";
};

/**
 * Re-execute a recorded session at max speed, with no endpoints and
 * no pacing: warmup, then each recorded command applied at exactly
 * its recorded tick, then run out to the recorded end tick. Writes
 * the same artifacts the live run wrote — byte-identical, the
 * replay determinism contract. Returns false with a one-line
 * @p error on a malformed or inconsistent session.
 */
bool replaySession(const SessionLog &log, const ReplayArtifacts &out,
                   std::string *error = nullptr,
                   DaemonResult *result = nullptr);

} // namespace pad::service

#endif // PAD_SERVICE_DAEMON_H
