#include "service/daemon.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>
#include <vector>

#include "alert/engine.h"
#include "alert/incident.h"
#include "alert/rule.h"
#include "attack/attacker.h"
#include "attack/virus_trace.h"
#include "core/config.h"
#include "core/datacenter.h"
#include "engine/backend.h"
#include "obs/manifest.h"
#include "obs/tracer.h"
#include "service/control.h"
#include "sim/stats_registry.h"
#include "telemetry/http.h"
#include "telemetry/hub.h"
#include "telemetry/prom.h"
#include "telemetry/remote_write.h"
#include "trace/synthetic_trace.h"
#include "trace/workload.h"
#include "util/json.h"
#include "util/json_writer.h"
#include "util/logging.h"
#include "util/types.h"

namespace pad::service {

/**
 * The simulation side of a session, shared verbatim by the live
 * daemon and replaySession(): workload + engine + hub + alert engine
 * + streamed incidents + the finalize/artifact path. Everything here
 * is driven from exactly one thread (the sim thread live, the caller
 * in replay); the hub alone is safe to read concurrently (scrapes).
 * Keeping both modes on this one class is what makes byte-identical
 * replay a structural property instead of a test assertion.
 */
class SessionRuntime
{
  public:
    SessionRuntime(ServiceConfig config, std::string rulesText)
        : config_(std::move(config)), rulesText_(std::move(rulesText))
    {
    }

    bool init(std::string *error)
    {
        if (!rulesText_.empty()) {
            std::string what;
            auto rules = alert::parseRules(rulesText_, &what);
            if (!rules) {
                if (error)
                    *error = "alert rules: " + what;
                return false;
            }
            alerts_ = std::make_unique<alert::AlertEngine>(
                std::move(*rules));
            alerts_->setIncidentSink([this](
                                         const alert::Incident &inc) {
                ++sealed_;
                if (incidents_.is_open())
                    alert::writeIncidentLine(incidents_, inc);
            });
            alertFeed_ = std::make_unique<alert::AlertTraceSink>(
                *alerts_, nullptr);
        }

        trace::SyntheticTraceConfig tc;
        tc.machines = 220;
        tc.days = config_.days;
        tc.seed = config_.seed;
        events_ = trace::SyntheticGoogleTrace(tc).generate();
        workload_.emplace(events_, tc.machines,
                          static_cast<Tick>(tc.days * kTicksPerDay));

        cfg_.scheme = config_.scheme;
        cfg_.budgetFraction = config_.budget;
        cfg_.clusterBudgetFraction = config_.clusterBudget;
        cfg_.deb = core::defaultDebConfig(cfg_.rackNameplate());
        cfg_.seed = config_.seed;
        cfg_.detectorResponse = config_.detector;
        engine_ = engine::makeClusterEngine(config_.backend, cfg_,
                                            &*workload_);

        // The daemon exists to be observed, so the hub is always on
        // (live mode serves it over /metrics; replay needs it anyway
        // to drive the alert engine identically).
        engine_->setTelemetry(&hub_);
        if (alerts_)
            hub_.setListener(alerts_.get());
        return true;
    }

    bool openIncidents(const std::string &path, std::string *error)
    {
        incidents_.open(path);
        if (!incidents_) {
            if (error)
                *error = "cannot open incidents file: " + path;
            return false;
        }
        return true;
    }

    /** Alert-engine trace feed; bind a TraceScope on the sim thread. */
    obs::TraceSink *traceFeed() { return alertFeed_.get(); }

    void warmup()
    {
        engine_->runCoarseUntil(
            kTicksPerDay +
            static_cast<Tick>(config_.hour * kTicksPerHour));
    }

    void stepCoarse() { engine_->stepCoarse(); }

    Tick now() const { return engine_->now(); }

    Tick coarseStep() const { return cfg_.coarseStep; }

    telemetry::TelemetryHub &hub() { return hub_; }

    std::uint64_t incidentsSealed() const { return sealed_; }

    std::uint64_t attackCount() const
    {
        return static_cast<std::uint64_t>(attacks_.size());
    }

    struct AttackOutcome {
        int victimRack = 0;
        int racksAttacked = 0;
        double survivalSec = 0.0;
        double throughput = 0.0;
        int spikesLaunched = 0;
    };

    /**
     * Run one injected attack window from the current state as a
     * single blocking engine call. Victim selection replicates
     * padsim: the primary rack at the requested load percentile,
     * extras at 5-point decrements.
     */
    AttackOutcome injectAttack(const AttackSpec &spec)
    {
        attack::AttackerConfig ac;
        ac.controlledNodes = spec.nodes;
        ac.kind = spec.virus;
        ac.train = attack::spikeTrainFor(spec.style, spec.virus);
        ac.prepareSec = 60.0;
        ac.maxDrainSec = 600.0;
        ac.seed = spec.seed;
        attack::TwoPhaseAttacker attacker(ac);

        const Tick from = engine_->now();
        const Tick to = from + secondsToTicks(spec.durationSec);
        core::AttackScenario sc;
        sc.targetPolicy = core::TargetPolicy::Fixed;
        sc.targetRack = core::rackByLoadPercentile(
            *workload_, cfg_, from, to, spec.victimPct);
        for (int i = 1; i < spec.racks; ++i) {
            const double pct =
                std::max(0.0, spec.victimPct - 5.0 * i);
            const int rack = core::rackByLoadPercentile(
                *workload_, cfg_, from, to, pct);
            if (rack != sc.targetRack &&
                std::find(sc.extraVictimRacks.begin(),
                          sc.extraVictimRacks.end(),
                          rack) == sc.extraVictimRacks.end())
                sc.extraVictimRacks.push_back(rack);
        }
        sc.durationSec = spec.durationSec;

        const auto out = engine_->runAttack(attacker, sc);

        AttackOutcome summary;
        summary.victimRack = sc.targetRack;
        summary.racksAttacked =
            1 + static_cast<int>(sc.extraVictimRacks.size());
        summary.survivalSec = out.survivalSec;
        summary.throughput = out.throughput;
        summary.spikesLaunched = out.spikesLaunched;
        attacks_.push_back(summary);
        return summary;
    }

    /**
     * Close the session at @p endTick: detach the alert listener,
     * seal every remaining incident (streaming them through the
     * sink), and build the stats registry — engine stats plus the
     * service.* summary, all pure functions of the sim.
     */
    void finalize(Tick endTick, std::uint64_t commands)
    {
        hub_.setListener(nullptr);
        if (alerts_)
            alerts_->finalize(endTick);

        engine_->exportStats(stats_);
        stats_
            .registerScalar("service.end_tick",
                            "sim tick the session ended at")
            .set(static_cast<double>(endTick));
        stats_
            .registerCounter("service.commands",
                             "control commands applied")
            .add(commands);
        stats_
            .registerCounter("service.attacks",
                             "attack scenarios injected")
            .add(attackCount());
        stats_
            .registerScalar("service.incidents",
                            "alert incidents sealed")
            .set(static_cast<double>(sealed_));
        for (std::size_t i = 0; i < attacks_.size(); ++i) {
            const std::string prefix =
                "service.attack" + std::to_string(i);
            const AttackOutcome &a = attacks_[i];
            stats_
                .registerScalar(prefix + ".victim_rack",
                                "primary victim rack")
                .set(static_cast<double>(a.victimRack));
            stats_
                .registerScalar(prefix + ".racks_attacked",
                                "victim racks targeted")
                .set(static_cast<double>(a.racksAttacked));
            stats_
                .registerScalar(prefix + ".survival_sec",
                                "attack start to first overload")
                .set(a.survivalSec);
            stats_
                .registerScalar(prefix + ".throughput",
                                "benign throughput over the window")
                .set(a.throughput);
            stats_
                .registerCounter(prefix + ".spikes_launched",
                                 "hidden spikes launched in Phase II")
                .add(static_cast<std::uint64_t>(
                    std::max(0, a.spikesLaunched)));
        }
        if (alerts_)
            alertStates_ = alerts_->ruleStates();
        finalized_ = true;
    }

    /** Finalized registry (scrape publication, artifacts). */
    const sim::StatsRegistry &stats() const { return stats_; }

    bool writeStatsJson(const std::string &path, std::string *error)
    {
        std::ofstream os(path);
        if (!os) {
            if (error)
                *error = "cannot write stats JSON to " + path;
            return false;
        }
        stats_.dumpJson(os);
        os << "\n";
        return true;
    }

    bool writePromDump(const std::string &path, std::string *error)
    {
        std::ofstream os(path);
        if (!os) {
            if (error)
                *error = "cannot write Prometheus exposition to " +
                         path;
            return false;
        }
        telemetry::PromWriter().write(
            os, &stats_, &hub_,
            alerts_ ? &alertStates_ : nullptr);
        return true;
    }

  private:
    ServiceConfig config_;
    std::string rulesText_;
    std::vector<trace::TaskEvent> events_;
    std::optional<trace::Workload> workload_;
    core::DataCenterConfig cfg_;
    std::unique_ptr<engine::ClusterEngine> engine_;
    telemetry::TelemetryHub hub_;
    std::unique_ptr<alert::AlertEngine> alerts_;
    std::unique_ptr<alert::AlertTraceSink> alertFeed_;
    std::ofstream incidents_;
    std::uint64_t sealed_ = 0;
    std::vector<AttackOutcome> attacks_;
    sim::StatsRegistry stats_;
    std::vector<telemetry::AlertStateSample> alertStates_;
    bool finalized_ = false;
};

namespace {

std::string
errorResponse(const std::string &what)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject()
        .key("ok").value(false)
        .key("error").value(what)
        .endObject();
    return os.str();
}

/**
 * Build and start a remote-write shipper for @p pushTo (live daemon
 * and replay share this). Returns nullptr with a one-line @p error
 * on a bad target or unusable spool directory.
 */
std::unique_ptr<telemetry::RemoteWriteShipper>
makePushShipper(const std::string &pushTo, double intervalS,
                const std::string &spoolDir, const std::string &source,
                std::uint64_t seed, const telemetry::TelemetryHub *hub,
                std::string *error)
{
    std::string what;
    const auto target = telemetry::parseHostPort(pushTo, &what);
    if (!target) {
        if (error)
            *error = "push target: " + what;
        return nullptr;
    }
    telemetry::RemoteWriteOptions rw;
    rw.host = target->first;
    rw.port = target->second;
    rw.source = source;
    rw.intervalS = intervalS;
    rw.spoolDir = spoolDir;
    // Decorrelate reconnect jitter across a fleet launched from one
    // seed sweep; the jitter never reaches the simulation.
    rw.jitterSeed = seed * 0x9e3779b97f4a7c15ULL + 1;
    auto shipper = std::make_unique<telemetry::RemoteWriteShipper>(
        std::move(rw), hub);
    if (!shipper->start(&what)) {
        if (error)
            *error = what;
        return nullptr;
    }
    return shipper;
}

} // namespace

ServiceDaemon::ServiceDaemon(DaemonOptions opts)
    : opts_(std::move(opts))
{
}

ServiceDaemon::~ServiceDaemon()
{
    if (control_)
        control_->stop();
    if (metrics_)
        metrics_->stop();
}

bool
ServiceDaemon::start(std::string *error)
{
    auto fail = [&](const std::string &what) {
        if (error)
            *error = what;
        return false;
    };

    if (!opts_.incidentsPath.empty() && opts_.rulesText.empty())
        return fail("incidents stream requires alert rules");

    runtime_ = std::make_unique<SessionRuntime>(opts_.config,
                                                opts_.rulesText);
    std::string what;
    if (!runtime_->init(&what))
        return fail(what);
    if (!opts_.incidentsPath.empty() &&
        !runtime_->openIncidents(opts_.incidentsPath, &what))
        return fail(what);

    if (!opts_.sessionPath.empty()) {
        session_ = std::make_unique<SessionWriter>(opts_.sessionPath);
        if (!session_->ok())
            return fail("cannot open session file: " +
                        opts_.sessionPath);
    }

    speed_ = std::max(0.0, opts_.speed);
    speedGauge_.store(speed_, std::memory_order_relaxed);

    if (!opts_.pushTo.empty()) {
        shipper_ = makePushShipper(
            opts_.pushTo, opts_.pushIntervalS, opts_.pushSpoolDir,
            opts_.pushSource, opts_.config.seed, &runtime_->hub(),
            &what);
        if (!shipper_)
            return fail("cannot push metrics: " + what);
    }

    if (opts_.metricsPort >= 0) {
        metrics_ = std::make_unique<telemetry::MetricsHttpServer>(
            opts_.metricsPort, [this] { return renderMetrics(); });
        if (!metrics_->start(&what))
            return fail("cannot serve metrics: " + what);
    }
    if (opts_.controlPort >= 0) {
        control_ = std::make_unique<ControlServer>(
            opts_.controlPort, [this](const std::string &line) {
                return submitCommand(line);
            });
        if (!control_->start(&what))
            return fail("cannot serve control: " + what);
    }
    started_ = true;
    return true;
}

int
ServiceDaemon::controlPort() const
{
    return control_ ? control_->port() : -1;
}

int
ServiceDaemon::metricsPort() const
{
    return metrics_ ? metrics_->port() : -1;
}

std::string
ServiceDaemon::submitCommand(const std::string &line)
{
    auto pending = std::make_shared<Pending>();
    pending->line = line;
    std::future<std::string> response =
        pending->response.get_future();
    {
        std::lock_guard<std::mutex> lock(qmu_);
        if (stopped_)
            return errorResponse("daemon stopped");
        queue_.push_back(pending);
    }
    qcv_.notify_all();
    return response.get();
}

void
ServiceDaemon::requestShutdown()
{
    // A plain atomic store, so signal handlers may call this. The
    // loop's waits are capped at 200ms, which bounds the latency.
    shutdownRequested_.store(true, std::memory_order_relaxed);
}

void
ServiceDaemon::run()
{
    if (!started_ || ran_)
        return;
    ran_ = true;

    // Curated trace events reach the alert engine via the
    // thread-local tracer; the scope must live on this (the sim)
    // thread.
    std::optional<obs::TraceScope> alertScope;
    if (runtime_->traceFeed())
        alertScope.emplace(runtime_->traceFeed());

    runtime_->warmup();
    tickGauge_.store(runtime_->now(), std::memory_order_relaxed);
    incidentsGauge_.store(runtime_->incidentsSealed(),
                          std::memory_order_relaxed);
    if (shipper_)
        shipper_->observe(runtime_->now()); // anchors the interval
    if (session_)
        session_->writeHeader(opts_.config, opts_.rulesText);

    const Tick limitTick =
        opts_.config.durationSec > 0.0
            ? runtime_->now() + secondsToTicks(opts_.config.durationSec)
            : kTickNever;

    using Clock = std::chrono::steady_clock;
    // Pacing anchor: wall time catches up to sim time from here.
    // Re-anchored on resume / set-speed / after an injected attack,
    // so bursts of sim progress are never "owed" back as stalls.
    Clock::time_point anchorWall = Clock::now();
    Tick anchorSim = runtime_->now();

    for (;;) {
        processPending();
        if (reanchor_) {
            anchorWall = Clock::now();
            anchorSim = runtime_->now();
            reanchor_ = false;
        }
        if (shutdownCmd_ ||
            shutdownRequested_.load(std::memory_order_relaxed))
            break;
        if (limitTick != kTickNever && runtime_->now() >= limitTick)
            break;

        if (paused_) {
            std::unique_lock<std::mutex> lock(qmu_);
            qcv_.wait_for(lock, std::chrono::milliseconds(50),
                          [&] { return !queue_.empty(); });
            continue;
        }

        if (speed_ > 0.0) {
            const double aheadSec = ticksToSeconds(
                runtime_->now() + runtime_->coarseStep() - anchorSim);
            const auto deadline =
                anchorWall +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(aheadSec / speed_));
            const auto now = Clock::now();
            if (now < deadline) {
                // Wait in <=200ms slices so an arriving command, a
                // set-speed, or a shutdown request is honored
                // promptly even when a step is minutes of wall time.
                std::unique_lock<std::mutex> lock(qmu_);
                qcv_.wait_until(
                    lock,
                    std::min(deadline,
                             now + std::chrono::milliseconds(200)),
                    [&] { return !queue_.empty(); });
                continue;
            }
        }

        runtime_->stepCoarse();
        tickGauge_.store(runtime_->now(), std::memory_order_relaxed);
        incidentsGauge_.store(runtime_->incidentsSealed(),
                              std::memory_order_relaxed);
        if (shipper_)
            shipper_->observe(runtime_->now());
    }

    const Tick endTick = runtime_->now();
    runtime_->finalize(endTick, result_.commands);
    result_.endTick = endTick;
    result_.attacks = runtime_->attackCount();
    result_.incidents = runtime_->incidentsSealed();
    tickGauge_.store(endTick, std::memory_order_relaxed);
    incidentsGauge_.store(result_.incidents,
                          std::memory_order_relaxed);
    // Publish the finalized registry for late scrapes; released
    // exactly once, never written again.
    scrapeStats_.store(&runtime_->stats(),
                       std::memory_order_release);
    // Flush the push pipeline while the endpoints are still up: one
    // final snapshot, the stats dump, then a bounded drain.
    if (shipper_)
        shipper_->finish(endTick, &runtime_->stats());

    std::string what;
    if (!opts_.statsJsonPath.empty() &&
        !runtime_->writeStatsJson(opts_.statsJsonPath, &what))
        warn("padd: {}", what);
    if (!opts_.promPath.empty() &&
        !runtime_->writePromDump(opts_.promPath, &what))
        warn("padd: {}", what);
    if (!opts_.manifestPath.empty()) {
        obs::RunManifest manifest;
        manifest.tool = "padd";
        manifest.experiment = core::schemeName(opts_.config.scheme);
        manifest.seed = opts_.config.seed;
        manifest.config = {
            {"scheme",
             std::string(core::schemeName(opts_.config.scheme))},
            {"backend",
             std::string(engine::backendName(opts_.config.backend))},
            {"budget", std::to_string(opts_.config.budget)},
            {"cluster_budget",
             std::to_string(opts_.config.clusterBudget)},
            {"hour", std::to_string(opts_.config.hour)},
            {"days", std::to_string(opts_.config.days)},
            {"duration_sec",
             std::to_string(opts_.config.durationSec)},
            {"detector", opts_.config.detector ? "true" : "false"},
        };
        manifest.statsJsonFile = opts_.statsJsonPath;
        manifest.statsJson = runtime_->stats().dumpJsonString();
        manifest.sessionFile = opts_.sessionPath;
        manifest.incidentsFile = opts_.incidentsPath;
        manifest.pushTarget = opts_.pushTo;
        manifest.pushSpoolDir = opts_.pushSpoolDir;
        obs::writeManifestFile(opts_.manifestPath, manifest);
    }
    if (session_)
        session_->writeEnd(endTick);

    // Refuse further commands, then answer any that raced in.
    {
        std::lock_guard<std::mutex> lock(qmu_);
        stopped_ = true;
        for (const auto &pending : queue_)
            pending->response.set_value(
                errorResponse("daemon stopped"));
        queue_.clear();
    }
    if (control_)
        control_->stop();
    if (metrics_)
        metrics_->stop();
}

void
ServiceDaemon::processPending()
{
    std::deque<std::shared_ptr<Pending>> batch;
    {
        std::lock_guard<std::mutex> lock(qmu_);
        batch.swap(queue_);
    }
    for (const auto &pending : batch)
        pending->response.set_value(applyCommand(pending->line));
}

std::string
ServiceDaemon::applyCommand(const std::string &line)
{
    std::string what;
    const auto node = parseJson(line, &what);
    if (!node)
        return errorResponse(what);
    if (!node->isObject())
        return errorResponse("command must be a JSON object");

    std::string name;
    const JsonValue *specNode = nullptr;
    const JsonValue *speedNode = nullptr;
    for (const auto &[key, value] : node->members) {
        if (key == "cmd") {
            if (!value.isString())
                return errorResponse("\"cmd\" must be a string");
            name = value.str;
        } else if (key == "spec") {
            specNode = &value;
        } else if (key == "speed") {
            speedNode = &value;
        } else {
            return errorResponse("unknown key \"" + key + "\"");
        }
    }
    if (name.empty())
        return errorResponse("missing \"cmd\"");

    const Tick tick = runtime_->now();
    auto record = [&](std::optional<AttackSpec> spec = std::nullopt,
                      double speed = 0.0) {
        if (session_) {
            SessionCommand cmd;
            cmd.seq = seq_++;
            cmd.tick = tick;
            cmd.name = name;
            cmd.spec = std::move(spec);
            cmd.speed = speed;
            session_->writeCommand(cmd);
        } else {
            ++seq_;
        }
        ++result_.commands;
    };
    auto respond = [&](auto fill) {
        std::ostringstream os;
        JsonWriter w(os);
        w.beginObject()
            .key("ok").value(true)
            .key("cmd").value(name)
            .key("tick").value(static_cast<std::int64_t>(tick));
        fill(w);
        w.endObject();
        return os.str();
    };

    if (name == "status") {
        // Observational: not recorded, not counted.
        return respond([&](JsonWriter &w) {
            w.key("sim_sec").value(ticksToSeconds(tick))
                .key("paused").value(paused_)
                .key("speed").value(speed_)
                .key("scheme")
                .value(core::schemeName(opts_.config.scheme))
                .key("backend")
                .value(engine::backendName(opts_.config.backend))
                .key("attacks")
                .value(runtime_->attackCount())
                .key("incidents")
                .value(runtime_->incidentsSealed())
                .key("commands")
                .value(static_cast<std::uint64_t>(result_.commands));
        });
    }
    if (name == "pause") {
        if (specNode || speedNode)
            return errorResponse("pause takes no arguments");
        paused_ = true;
        pausedGauge_.store(true, std::memory_order_relaxed);
        record();
        return respond([](JsonWriter &) {});
    }
    if (name == "resume") {
        if (specNode || speedNode)
            return errorResponse("resume takes no arguments");
        paused_ = false;
        pausedGauge_.store(false, std::memory_order_relaxed);
        reanchor_ = true;
        record();
        return respond([](JsonWriter &) {});
    }
    if (name == "set-speed") {
        if (specNode)
            return errorResponse("set-speed takes no spec");
        double speed = -1.0;
        if (speedNode && speedNode->isNumber())
            speed = speedNode->number;
        else if (speedNode && speedNode->isString() &&
                 speedNode->str == "max")
            speed = 0.0;
        if (speed < 0.0)
            return errorResponse(
                "set-speed needs \"speed\": a number >= 0 "
                "(sim-seconds per wall-second; 0 or \"max\" = "
                "unpaced)");
        speed_ = speed;
        speedGauge_.store(speed, std::memory_order_relaxed);
        reanchor_ = true;
        record(std::nullopt, speed);
        return respond([&](JsonWriter &w) {
            w.key("speed").value(speed_);
        });
    }
    if (name == "inject-attack") {
        if (speedNode)
            return errorResponse("inject-attack takes no speed");
        AttackSpec spec; // padsim defaults unless a spec is given
        if (specNode) {
            const auto parsed =
                parseAttackSpecValue(*specNode, &what);
            if (!parsed)
                return errorResponse(what);
            spec = *parsed;
        }
        // Record before executing: a session cut short mid-attack
        // is still replayable through its last input.
        record(spec);
        const auto outcome = runtime_->injectAttack(spec);
        attacksGauge_.store(runtime_->attackCount(),
                            std::memory_order_relaxed);
        tickGauge_.store(runtime_->now(),
                         std::memory_order_relaxed);
        incidentsGauge_.store(runtime_->incidentsSealed(),
                              std::memory_order_relaxed);
        if (shipper_)
            shipper_->observe(runtime_->now());
        reanchor_ = true;
        return respond([&](JsonWriter &w) {
            w.key("victim_rack").value(outcome.victimRack)
                .key("racks_attacked").value(outcome.racksAttacked)
                .key("survival_sec").value(outcome.survivalSec)
                .key("throughput").value(outcome.throughput)
                .key("spikes_launched").value(outcome.spikesLaunched)
                .key("end_tick")
                .value(static_cast<std::int64_t>(runtime_->now()));
        });
    }
    if (name == "shutdown") {
        if (specNode || speedNode)
            return errorResponse("shutdown takes no arguments");
        record();
        shutdownCmd_ = true;
        return respond([](JsonWriter &) {});
    }
    return errorResponse("unknown command \"" + name + "\"");
}

std::string
ServiceDaemon::renderMetrics() const
{
    std::ostringstream os;
    os << "# HELP pad_service_up padd daemon liveness\n"
          "# TYPE pad_service_up gauge\n"
          "pad_service_up 1\n";
    os << "# HELP pad_service_sim_tick current simulation tick\n"
          "# TYPE pad_service_sim_tick gauge\n"
          "pad_service_sim_tick "
       << tickGauge_.load(std::memory_order_relaxed) << "\n";
    os << "# HELP pad_service_paused 1 while the sim loop is paused\n"
          "# TYPE pad_service_paused gauge\n"
          "pad_service_paused "
       << (pausedGauge_.load(std::memory_order_relaxed) ? 1 : 0)
       << "\n";
    os << "# HELP pad_service_speed sim-seconds per wall-second "
          "(0 = max)\n"
          "# TYPE pad_service_speed gauge\n"
          "pad_service_speed "
       << speedGauge_.load(std::memory_order_relaxed) << "\n";
    os << "# HELP pad_service_attacks_total attack scenarios "
          "injected\n"
          "# TYPE pad_service_attacks_total counter\n"
          "pad_service_attacks_total "
       << attacksGauge_.load(std::memory_order_relaxed) << "\n";
    os << "# HELP pad_service_incidents_total alert incidents "
          "sealed\n"
          "# TYPE pad_service_incidents_total counter\n"
          "pad_service_incidents_total "
       << incidentsGauge_.load(std::memory_order_relaxed) << "\n";
    if (shipper_)
        os << telemetry::RemoteWriteShipper::renderPromCounters(
            shipper_->counters());
    os << telemetry::PromWriter().render(
        scrapeStats_.load(std::memory_order_acquire),
        &runtime_->hub());
    return os.str();
}

bool
replaySession(const SessionLog &log, const ReplayArtifacts &out,
              std::string *error, DaemonResult *result)
{
    auto fail = [&](const std::string &what) {
        if (error)
            *error = what;
        return false;
    };

    if (!out.incidentsPath.empty() && log.rules.empty())
        return fail("session has no alert rules, so there is no "
                    "incidents stream to replay");

    SessionRuntime rt(log.config, log.rules);
    std::string what;
    if (!rt.init(&what))
        return fail(what);
    if (!out.incidentsPath.empty() &&
        !rt.openIncidents(out.incidentsPath, &what))
        return fail(what);

    std::optional<obs::TraceScope> alertScope;
    if (rt.traceFeed())
        alertScope.emplace(rt.traceFeed());

    // Push batches are cut purely by sim tick, at the same points
    // the live loop cuts them (after warmup, every coarse step,
    // every injected attack), so a replay re-ships the live run's
    // exact batch stream.
    std::unique_ptr<telemetry::RemoteWriteShipper> shipper;
    if (!out.pushTo.empty()) {
        shipper = makePushShipper(out.pushTo, out.pushIntervalS,
                                  out.pushSpoolDir, out.pushSource,
                                  log.config.seed, &rt.hub(), &what);
        if (!shipper)
            return fail("cannot push metrics: " + what);
    }
    const auto observe = [&] {
        if (shipper)
            shipper->observe(rt.now());
    };

    rt.warmup();
    observe(); // anchors the interval, exactly like the live loop
    std::uint64_t commands = 0;
    for (const SessionCommand &cmd : log.commands) {
        while (rt.now() < cmd.tick) {
            rt.stepCoarse();
            observe();
        }
        if (rt.now() != cmd.tick)
            return fail("session cmd " + std::to_string(cmd.seq) +
                        " tick " + std::to_string(cmd.tick) +
                        " is not a step boundary of this "
                        "configuration (sim is at " +
                        std::to_string(rt.now()) + ")");
        if (cmd.name == "inject-attack") {
            rt.injectAttack(*cmd.spec);
            observe();
        }
        // pause / resume / set-speed shaped wall time only; in sim
        // time they are no-ops by construction.
        ++commands;
    }
    // A crash-cut session (no "end" record) reports an end tick of
    // its last command, which may predate warmup's end: replay at
    // least as far as the sim has already advanced.
    const Tick endTick = std::max(log.endTick, rt.now());
    while (rt.now() < endTick) {
        rt.stepCoarse();
        observe();
    }
    if (rt.now() != endTick)
        return fail("session end tick " + std::to_string(endTick) +
                    " is not reachable (sim is at " +
                    std::to_string(rt.now()) + ")");

    rt.finalize(endTick, commands);
    if (shipper)
        shipper->finish(endTick, &rt.stats());
    if (result) {
        result->endTick = endTick;
        result->attacks = rt.attackCount();
        result->incidents = rt.incidentsSealed();
        result->commands = commands;
    }
    if (!out.statsJsonPath.empty() &&
        !rt.writeStatsJson(out.statsJsonPath, &what))
        return fail(what);
    if (!out.promPath.empty() && !rt.writePromDump(out.promPath, &what))
        return fail(what);
    return true;
}

} // namespace pad::service
