/**
 * @file
 * Local control channel for the padd daemon: line-delimited JSON
 * over a localhost TCP socket.
 *
 * The protocol is one JSON object per line in each direction: the
 * client sends a command line ({"cmd":"status"}, {"cmd":
 * "inject-attack","spec":{...}}, ...) and the server answers with
 * exactly one response line ({"ok":true,...} or {"ok":false,
 * "error":"..."}) before reading the next command. Connections are
 * served one at a time, like the metrics endpoint — a local
 * operator channel needs no more, and a single accept loop keeps
 * the threading story trivial.
 *
 * The server never touches the simulation itself: every received
 * line goes through the caller-supplied handler, which (in the
 * daemon) enqueues the command for the simulation thread and blocks
 * until it has been applied at a step boundary. The handler runs on
 * the server's accept thread.
 *
 * Port 0 binds an ephemeral port, queryable via port() after
 * start(); a failed start() reports a one-line error and the caller
 * must treat it as fatal (see telemetry/http.h for the contract).
 */

#ifndef PAD_SERVICE_CONTROL_H
#define PAD_SERVICE_CONTROL_H

#include <atomic>
#include <functional>
#include <optional>
#include <string>
#include <thread>

namespace pad::service {

class ControlServer
{
  public:
    /** Maps one received command line to one response line. */
    using Handler = std::function<std::string(const std::string &)>;

    ControlServer(int port, Handler handler);
    ~ControlServer();

    ControlServer(const ControlServer &) = delete;
    ControlServer &operator=(const ControlServer &) = delete;

    /** Bind 127.0.0.1:<port>, listen, spawn the accept thread. */
    bool start(std::string *error = nullptr);

    /** Signal the accept loop and join. Idempotent. */
    void stop();

    bool running() const { return running_; }

    /** Actual bound port (resolves port 0) after start(). */
    int port() const { return port_; }

  private:
    void serveLoop();
    void handleConnection(int fd);

    int requestedPort_;
    Handler handler_;
    int listenFd_ = -1;
    int port_ = 0;
    std::atomic<bool> stop_{false};
    bool running_ = false;
    std::thread thread_;
};

/**
 * Blocking single-connection client for the control protocol; used
 * by `padd --connect` and the service tests. Not thread-safe.
 */
class ControlClient
{
  public:
    ControlClient() = default;
    ~ControlClient();

    ControlClient(const ControlClient &) = delete;
    ControlClient &operator=(const ControlClient &) = delete;

    /** Connect to 127.0.0.1:<port>. */
    bool connect(int port, std::string *error = nullptr);

    bool connected() const { return fd_ >= 0; }

    void close();

    /**
     * Send one command line and wait for the one-line response
     * (without the trailing newline). Returns nullopt on a closed
     * connection or after @p timeoutMs without a complete line.
     */
    std::optional<std::string> request(const std::string &line,
                                       int timeoutMs = 30000);

  private:
    int fd_ = -1;
    std::string buffer_;
};

} // namespace pad::service

#endif // PAD_SERVICE_CONTROL_H
