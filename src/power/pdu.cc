#include "power/pdu.h"

#include <numeric>

#include "util/logging.h"

namespace pad::power {

namespace {

CircuitBreakerConfig
breakerFor(const PduConfig &config)
{
    CircuitBreakerConfig bc = config.breaker;
    bc.ratedPower = config.budget;
    return bc;
}

} // namespace

Pdu::Pdu(std::string name, const PduConfig &config)
    : name_(std::move(name)), config_(config),
      breaker_(name_ + ".breaker", breakerFor(config)),
      limits_(config.outlets, config.budget)
{
    PAD_ASSERT(config_.budget > 0.0);
    PAD_ASSERT(config_.outlets > 0);
}

void
Pdu::setOutletLimit(std::size_t i, Watts watts)
{
    PAD_ASSERT(i < limits_.size());
    PAD_ASSERT(watts >= 0.0);
    limits_[i] = watts;
}

Watts
Pdu::outletLimit(std::size_t i) const
{
    PAD_ASSERT(i < limits_.size());
    return limits_[i];
}

Watts
Pdu::totalOutletLimit() const
{
    return std::accumulate(limits_.begin(), limits_.end(), 0.0);
}

bool
Pdu::budgetFeasible(Watts totalNameplate) const
{
    return totalOutletLimit() <= config_.budget + 1e-9 &&
           config_.budget <= totalNameplate + 1e-9;
}

bool
Pdu::observe(const std::vector<Watts> &draws, double dt)
{
    PAD_ASSERT(draws.size() == limits_.size(),
               "outlet draw vector size mismatch");
    Watts total = 0.0;
    for (std::size_t i = 0; i < draws.size(); ++i) {
        total += draws[i];
        if (draws[i] > limits_[i] + 1e-9)
            ++violations_;
    }
    lastDraw_ = total;
    return breaker_.observe(total, dt);
}

} // namespace pad::power
