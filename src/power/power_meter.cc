#include "power/power_meter.h"

#include <algorithm>

#include "util/logging.h"

namespace pad::power {

PowerMeter::PowerMeter(std::string name, Tick interval)
    : name_(std::move(name)), interval_(interval)
{
    PAD_ASSERT(interval_ > 0);
}

void
PowerMeter::closeInterval()
{
    const Watts avg =
        energyInInterval_ / static_cast<double>(interval_);
    readings_.push_back(MeterReading{intervalStart_ + interval_, avg});
    intervalStart_ += interval_;
    energyInInterval_ = 0.0;
}

void
PowerMeter::observe(Watts power, Tick dt)
{
    PAD_ASSERT(dt >= 0);
    while (dt > 0) {
        const Tick intervalEnd = intervalStart_ + interval_;
        const Tick step = std::min(dt, intervalEnd - now_);
        energyInInterval_ += power * static_cast<double>(step);
        now_ += step;
        dt -= step;
        if (now_ == intervalEnd)
            closeInterval();
    }
}

Watts
PowerMeter::lastAverage() const
{
    return readings_.empty() ? 0.0 : readings_.back().average;
}

} // namespace pad::power
