/**
 * @file
 * The four battery deployment options of paper Fig. 3, with the
 * power-conversion and availability characteristics that motivate
 * distributed energy backup (paper §I-II):
 *
 *  1. centralized UPS  (up to several MW, double AC/DC conversion)
 *  2. end-of-row UPS   (20-200 kW)
 *  3. top-of-rack UPS  (1-5 kW, DC-coupled)
 *  4. per-node battery (hundreds of W, DC-coupled)
 *
 * DC-coupled distributed options avoid the online UPS's input and
 * output conversions (Microsoft reports up to 15% PUE improvement;
 * Hitachi over 8% efficiency gain — paper refs [3, 4]), and they
 * remove the central UPS single point of failure while permitting
 * fractional peak shaving (a central UPS "either takes over the
 * entire data center or serves as an idle power backup").
 */

#ifndef PAD_POWER_DEPLOYMENT_H
#define PAD_POWER_DEPLOYMENT_H

#include <string>

#include "util/types.h"

namespace pad::power {

/** Battery deployment styles (paper Fig. 3). */
enum class DeploymentOption {
    CentralizedUps,  ///< option 1: facility-level online UPS
    EndOfRowUps,     ///< option 2: PDU-level UPS
    TopOfRackBbu,    ///< option 3: rack battery cabinet, DC-coupled
    PerNodeBattery,  ///< option 4: in-chassis battery, DC-coupled
};

/** All options, for sweeps. */
inline constexpr DeploymentOption kAllDeployments[] = {
    DeploymentOption::CentralizedUps,
    DeploymentOption::EndOfRowUps,
    DeploymentOption::TopOfRackBbu,
    DeploymentOption::PerNodeBattery,
};

/** Static characteristics of one deployment style. */
struct DeploymentSpec {
    /** Display name. */
    std::string name;
    /** Typical unit size, watts. */
    Watts typicalUnitSize = 0.0;
    /** End-to-end power path efficiency through the backup chain. */
    double pathEfficiency = 1.0;
    /** True when the battery is DC-coupled (no double conversion). */
    bool dcCoupled = false;
    /** Can a fraction of servers switch to battery independently? */
    bool fractionalShaving = false;
    /** Backup units per 22-rack, 220-server cluster. */
    int unitsPerCluster = 1;
    /** Single-unit failure rate, failures per year. */
    double unitFailuresPerYear = 0.1;
    /** Mean repair time per failure, hours. */
    double repairHours = 8.0;
};

/** Characteristics table for each option. */
DeploymentSpec deploymentSpec(DeploymentOption option);

/** Human-readable option name. */
std::string deploymentName(DeploymentOption option);

/**
 * Annual conversion-loss energy for an IT load served through this
 * deployment's power path.
 *
 * @param option deployment style
 * @param itLoad average IT load, watts
 * @return wasted energy per year, watt-hours
 */
WattHours annualConversionLoss(DeploymentOption option, Watts itLoad);

/**
 * Probability that backup power is unavailable for a *given server*
 * when needed (steady-state unavailability of its backup chain).
 *
 * Centralized options concentrate risk: one failed unit strips the
 * whole cluster of backup. Distributed options fail per rack/node.
 */
double backupUnavailability(DeploymentOption option);

/**
 * Expected fraction of the cluster's servers without backup at a
 * random instant (SPOF exposure; equals backupUnavailability for
 * every option, but the *variance* differs — reported separately).
 */
double expectedUnprotectedFraction(DeploymentOption option);

/**
 * Probability that more than @p fraction of the cluster is without
 * backup simultaneously — the SPOF signature: essentially the whole
 * facility for a central UPS, near zero for distributed units.
 */
double probMassOutage(DeploymentOption option, double fraction);

} // namespace pad::power

#endif // PAD_POWER_DEPLOYMENT_H
