#include "power/circuit_breaker.h"

#include <cmath>
#include <limits>

#include "obs/tracer.h"
#include "util/logging.h"

namespace pad::power {

CircuitBreaker::CircuitBreaker(std::string name,
                               const CircuitBreakerConfig &config)
    : name_(std::move(name)), config_(config)
{
    PAD_ASSERT(config_.ratedPower > 0.0);
    PAD_ASSERT(config_.holdRatio >= 1.0);
    PAD_ASSERT(config_.magneticRatio > config_.holdRatio);
    PAD_ASSERT(config_.thermalCapacity > 0.0);
    PAD_ASSERT(config_.coolTau > 0.0);
}

bool
CircuitBreaker::observe(Watts power, double dt)
{
    PAD_ASSERT(dt >= 0.0);
    if (tripped_ || dt == 0.0)
        return false;

    const double r = power / config_.ratedPower;
    if (r >= config_.magneticRatio) {
        tripped_ = true;
        ++trips_;
        if (obs::traceEnabled())
            obs::emit(name_, "breaker.trip",
                      {obs::TraceField::str("cause", "magnetic"),
                       obs::TraceField::num("draw_w", power),
                       obs::TraceField::num("ratio", r)});
        return true;
    }
    if (r > config_.holdRatio) {
        heat_ += (r * r - 1.0) * dt;
        if (heat_ >= config_.thermalCapacity) {
            tripped_ = true;
            ++trips_;
            if (obs::traceEnabled())
                obs::emit(name_, "breaker.trip",
                          {obs::TraceField::str("cause", "thermal"),
                           obs::TraceField::num("draw_w", power),
                           obs::TraceField::num("ratio", r),
                           obs::TraceField::num("heat", heat_)});
            return true;
        }
    } else {
        heat_ *= std::exp(-dt / config_.coolTau);
    }
    return false;
}

void
CircuitBreaker::reset()
{
    tripped_ = false;
    heat_ = 0.0;
}

double
CircuitBreaker::timeToTrip(Watts power) const
{
    const double r = power / config_.ratedPower;
    if (r >= config_.magneticRatio)
        return 0.0;
    if (r <= config_.holdRatio)
        return std::numeric_limits<double>::infinity();
    return config_.thermalCapacity / (r * r - 1.0);
}

} // namespace pad::power
