#include "power/deployment.h"

#include <cmath>

#include "util/logging.h"

namespace pad::power {

DeploymentSpec
deploymentSpec(DeploymentOption option)
{
    DeploymentSpec spec;
    switch (option) {
      case DeploymentOption::CentralizedUps:
        spec.name = "centralized UPS";
        spec.typicalUnitSize = 2.0e6;
        // Double conversion (AC->DC->AC) at ~95% per stage.
        spec.pathEfficiency = 0.90;
        spec.dcCoupled = false;
        spec.fractionalShaving = false;
        spec.unitsPerCluster = 1;
        spec.unitFailuresPerYear = 0.2; // complex, maintained unit
        spec.repairHours = 24.0;
        break;
      case DeploymentOption::EndOfRowUps:
        spec.name = "end-of-row UPS";
        spec.typicalUnitSize = 100.0e3;
        spec.pathEfficiency = 0.92;
        spec.dcCoupled = false;
        spec.fractionalShaving = false;
        spec.unitsPerCluster = 4;
        spec.unitFailuresPerYear = 0.15;
        spec.repairHours = 12.0;
        break;
      case DeploymentOption::TopOfRackBbu:
        spec.name = "top-of-rack BBU";
        spec.typicalUnitSize = 3.0e3;
        spec.pathEfficiency = 0.965; // single DC/DC stage
        spec.dcCoupled = true;
        spec.fractionalShaving = true;
        spec.unitsPerCluster = 22;
        spec.unitFailuresPerYear = 0.1;
        spec.repairHours = 4.0;
        break;
      case DeploymentOption::PerNodeBattery:
        spec.name = "per-node battery";
        spec.typicalUnitSize = 400.0;
        spec.pathEfficiency = 0.975;
        spec.dcCoupled = true;
        spec.fractionalShaving = true;
        spec.unitsPerCluster = 220;
        spec.unitFailuresPerYear = 0.08;
        spec.repairHours = 2.0;
        break;
    }
    return spec;
}

std::string
deploymentName(DeploymentOption option)
{
    return deploymentSpec(option).name;
}

WattHours
annualConversionLoss(DeploymentOption option, Watts itLoad)
{
    PAD_ASSERT(itLoad >= 0.0);
    const DeploymentSpec spec = deploymentSpec(option);
    // Power drawn from the utility to deliver itLoad through the
    // backup chain, minus the IT load itself, over a year.
    const Watts wasted = itLoad / spec.pathEfficiency - itLoad;
    return wasted * 24.0 * 365.0;
}

namespace {

/** Steady-state unavailability of one backup unit. */
double
unitUnavailability(const DeploymentSpec &spec)
{
    const double mttrHours = spec.repairHours;
    const double mtbfHours = 365.0 * 24.0 / spec.unitFailuresPerYear;
    return mttrHours / (mttrHours + mtbfHours);
}

} // namespace

double
backupUnavailability(DeploymentOption option)
{
    return unitUnavailability(deploymentSpec(option));
}

double
expectedUnprotectedFraction(DeploymentOption option)
{
    // Each unit covers 1/n of the cluster; expected unprotected
    // fraction equals the per-unit unavailability by linearity.
    return backupUnavailability(option);
}

double
probMassOutage(DeploymentOption option, double fraction)
{
    PAD_ASSERT(fraction >= 0.0 && fraction < 1.0);
    const DeploymentSpec spec = deploymentSpec(option);
    const int n = spec.unitsPerCluster;
    const double u = unitUnavailability(spec);

    // P(more than fraction*n of the n independent units are down):
    // binomial survival function evaluated incrementally.
    const int threshold = static_cast<int>(fraction * n);
    double pmf = std::pow(1.0 - u, n); // P(k = 0)
    double cdf = 0.0;
    for (int k = 0; k <= threshold; ++k) {
        if (k > 0) {
            pmf *= (static_cast<double>(n - k + 1) /
                    static_cast<double>(k)) *
                   (u / (1.0 - u));
        }
        cdf += pmf;
    }
    return std::max(0.0, 1.0 - cdf);
}

} // namespace pad::power
