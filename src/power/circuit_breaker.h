/**
 * @file
 * Thermal-magnetic circuit breaker model (paper §III-A, ref [11]).
 *
 * "Tripping a circuit breaker is not an instantaneous event since
 * most PDU can tolerate certain degrees of brief current overloads.
 * However, once the overload exceeds certain threshold, it requires
 * very short time (several seconds) to trip a circuit breaker."
 *
 * We model the thermal element as a heat accumulator driven by
 * (r^2 - 1) for overload ratio r > holdRatio, with exponential
 * cool-down below it, plus an instantaneous magnetic trip at large r.
 * This yields the classic inverse-time curve: mild overloads take
 * tens of seconds to minutes, a 25% overload trips in seconds.
 */

#ifndef PAD_POWER_CIRCUIT_BREAKER_H
#define PAD_POWER_CIRCUIT_BREAKER_H

#include <string>

#include "util/types.h"

namespace pad::power {

/** Static breaker characteristics. */
struct CircuitBreakerConfig {
    /** Rated power; overload ratio r = draw / rated. */
    Watts ratedPower = 5000.0;
    /** Overloads at/below this ratio never heat the element. */
    double holdRatio = 1.05;
    /** Instantaneous (magnetic) trip at/above this ratio. */
    double magneticRatio = 5.0;
    /**
     * Thermal trip threshold in (ratio^2-1)-seconds. 2.8 makes a
     * steady 25% overload trip in about 5 s.
     */
    double thermalCapacity = 2.8;
    /** Cool-down time constant, seconds. */
    double coolTau = 30.0;
};

/**
 * Stateful breaker: feed it (power, dt) observations; it trips when
 * the inverse-time curve is exceeded.
 */
class CircuitBreaker
{
  public:
    /**
     * @param name   telemetry name, e.g. "rack2.breaker"
     * @param config static characteristics
     */
    CircuitBreaker(std::string name, const CircuitBreakerConfig &config);

    /**
     * Observe a constant draw of @p power for @p dt seconds.
     * @retval true the breaker tripped during this interval
     */
    bool observe(Watts power, double dt);

    /** True once tripped (stays tripped until reset()). */
    bool tripped() const { return tripped_; }

    /** Clear the trip latch and thermal state. */
    void reset();

    /** Accumulated thermal state (0 = cold). */
    double heat() const { return heat_; }

    /** Number of trips over the breaker's lifetime. */
    int tripCount() const { return trips_; }

    /**
     * Time a steady draw of @p power would need to trip this breaker
     * from cold, in seconds; +infinity when it never trips.
     */
    double timeToTrip(Watts power) const;

    /** Rated power. */
    Watts ratedPower() const { return config_.ratedPower; }

    /** Telemetry name. */
    const std::string &name() const { return name_; }

    /** Static configuration. */
    const CircuitBreakerConfig &config() const { return config_; }

  private:
    std::string name_;
    CircuitBreakerConfig config_;
    double heat_ = 0.0;
    bool tripped_ = false;
    int trips_ = 0;
};

} // namespace pad::power

#endif // PAD_POWER_CIRCUIT_BREAKER_H
