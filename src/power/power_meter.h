/**
 * @file
 * Interval-averaging power meter (paper §III-B, Table I).
 *
 * Real data centers monitor "total energy consumption at
 * coarse-grained intervals (e.g., 10 minutes) to estimate the
 * average power demand", which is exactly why narrow spikes are
 * invisible to them. The meter integrates energy continuously and
 * publishes one averaged reading per metering interval.
 */

#ifndef PAD_POWER_POWER_METER_H
#define PAD_POWER_POWER_METER_H

#include <string>
#include <vector>

#include "util/types.h"

namespace pad::power {

/** One published meter reading. */
struct MeterReading {
    /** Tick at the end of the metering interval. */
    Tick when = 0;
    /** Average power over the interval, watts. */
    Watts average = 0.0;
};

/**
 * Integrating meter with a fixed reporting interval.
 */
class PowerMeter
{
  public:
    /**
     * @param name     telemetry name
     * @param interval metering interval in ticks (e.g. 5 s ... 15 min)
     */
    PowerMeter(std::string name, Tick interval);

    /**
     * Feed a constant draw of @p power from the meter's current
     * position for @p dt ticks. Crossing one or more interval
     * boundaries publishes the corresponding readings.
     */
    void observe(Watts power, Tick dt);

    /** All published readings so far. */
    const std::vector<MeterReading> &readings() const { return readings_; }

    /** Last published average (0 before the first interval ends). */
    Watts lastAverage() const;

    /** Metering interval in ticks. */
    Tick interval() const { return interval_; }

    /** Current position of the meter clock, ticks. */
    Tick now() const { return now_; }

    /** Telemetry name. */
    const std::string &name() const { return name_; }

  private:
    void closeInterval();

    std::string name_;
    Tick interval_;
    Tick now_ = 0;
    Tick intervalStart_ = 0;
    double energyInInterval_ = 0.0; ///< watt-ticks
    std::vector<MeterReading> readings_;
};

} // namespace pad::power

#endif // PAD_POWER_POWER_METER_H
