#include "power/server_power_model.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace pad::power {

ServerPowerModel::ServerPowerModel(const ServerPowerConfig &config)
    : config_(config)
{
    PAD_ASSERT(config_.peakPower > config_.idlePower);
    PAD_ASSERT(config_.idlePower >= 0.0);
    PAD_ASSERT(config_.curveExponent > 0.0);
}

double
ServerPowerModel::executed(double util, double dvfs) const
{
    // A frequency cut slows every cycle: work completes at rate
    // util x dvfs (the paper charges DVFS capping as a proportional
    // performance loss).
    util = std::clamp(util, 0.0, 1.0);
    dvfs = std::clamp(dvfs, 0.0, 1.0);
    return util * dvfs;
}

Watts
ServerPowerModel::power(double util, double dvfs) const
{
    util = std::clamp(util, 0.0, 1.0);
    dvfs = std::clamp(dvfs, 1e-6, 1.0);
    // Dynamic power ceiling scales with frequency; within the ceiling
    // the concave SPECpower-style curve applies to the occupied
    // fraction of the (scaled) ceiling.
    const double span = config_.peakPower - config_.idlePower;
    const double frac = std::pow(util, config_.curveExponent);
    return config_.idlePower + span * dvfs * frac;
}

void
ServerPowerModel::evaluate(double util, double dvfs, Watts &powerAtDvfs,
                           Watts &powerUncapped,
                           double &executedUtil) const
{
    // Mirror power()'s and executed()'s clamps and expression shapes
    // exactly: power(util, 1.0) reduces to idle + span * 1.0 * frac,
    // which is the uncapped value computed here.
    const double u = std::clamp(util, 0.0, 1.0);
    const double f = std::clamp(dvfs, 1e-6, 1.0);
    const double span = config_.peakPower - config_.idlePower;
    const double frac = std::pow(u, config_.curveExponent);
    powerAtDvfs = config_.idlePower + span * f * frac;
    powerUncapped = config_.idlePower + span * 1.0 * frac;
    executedUtil = u * std::clamp(dvfs, 0.0, 1.0);
}

double
ServerPowerModel::utilizationFor(Watts watts) const
{
    const double span = config_.peakPower - config_.idlePower;
    const double frac =
        std::clamp((watts - config_.idlePower) / span, 0.0, 1.0);
    return std::pow(frac, 1.0 / config_.curveExponent);
}

} // namespace pad::power
