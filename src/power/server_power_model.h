/**
 * @file
 * Utilization-to-power model for one server, following the
 * SPECpower_ssj2008 measurement style the paper relies on: the
 * evaluated HP ProLiant DL585 G5 (2.70 GHz AMD Opteron 8384) draws
 * 299 W at active idle and 521 W at 100% load (paper §V, ref [31]).
 *
 * The model also implements the DVFS-based power capping used by the
 * PSPC baseline: at a frequency factor f < 1 the server executes work
 * at most at rate f and its dynamic power ceiling scales with f.
 */

#ifndef PAD_POWER_SERVER_POWER_MODEL_H
#define PAD_POWER_SERVER_POWER_MODEL_H

#include <array>

#include "util/types.h"

namespace pad::power {

/** Static description of a server's power behaviour. */
struct ServerPowerConfig {
    /** Active idle power, watts. */
    Watts idlePower = 299.0;
    /** Full-load (100% target load) power, watts. */
    Watts peakPower = 521.0;
    /**
     * Curve shape exponent: <1 gives the concave utilization/power
     * relation SPECpower reports for this class of machine.
     */
    double curveExponent = 0.85;
};

/**
 * Maps demanded utilization and a DVFS cap to electrical power and
 * executed throughput.
 */
class ServerPowerModel
{
  public:
    explicit ServerPowerModel(const ServerPowerConfig &config);

    /**
     * Power drawn when the workload demands utilization @p util and
     * the server runs at frequency factor @p dvfs (1.0 = uncapped).
     *
     * @param util demanded utilization in [0, 1]
     * @param dvfs frequency factor in (0, 1]
     */
    Watts power(double util, double dvfs = 1.0) const;

    /**
     * Throughput actually executed: util x dvfs (a frequency cut is
     * a proportional slowdown). The PSPC performance accounting
     * charges util - executed as lost work.
     */
    double executed(double util, double dvfs = 1.0) const;

    /**
     * Hot-path bundle: power at @p dvfs, power at full frequency and
     * executed throughput in one call, sharing the single pow() both
     * power() evaluations would otherwise repeat. Each output is
     * bit-identical to the corresponding scalar accessor — the
     * simulation step needs all three per server, and the pow() is
     * the dominant cost of the per-server walk.
     */
    void evaluate(double util, double dvfs, Watts &powerAtDvfs,
                  Watts &powerUncapped, double &executedUtil) const;

    /**
     * Inverse mapping: the utilization that would produce @p watts at
     * full frequency (clamped to [0, 1]). Used by attackers to reason
     * about how much load is needed for a target power level.
     */
    double utilizationFor(Watts watts) const;

    /** Nameplate (peak) power. */
    Watts peak() const { return config_.peakPower; }

    /** Active idle power. */
    Watts idle() const { return config_.idlePower; }

    /** Static configuration. */
    const ServerPowerConfig &config() const { return config_; }

  private:
    ServerPowerConfig config_;
};

} // namespace pad::power

#endif // PAD_POWER_SERVER_POWER_MODEL_H
