/**
 * @file
 * Intelligent power distribution unit (iPDU) model, paper §II-B.
 *
 * A PDU has a rated budget protected by a circuit breaker and a set
 * of outlets, each with a soft power limit ("modern intelligent PDU
 * is able to specify the maximum power of each power outlet"). The
 * oversubscription constraints of Eq. (1)-(2) are checked here:
 *
 *   p_i - b_i <= lambda_i * Pr       (per outlet, soft limit)
 *   sum(lambda_i * Pr) <= P_PDU <= n * Pr
 */

#ifndef PAD_POWER_PDU_H
#define PAD_POWER_PDU_H

#include <string>
#include <vector>

#include "power/circuit_breaker.h"
#include "util/types.h"

namespace pad::power {

/** Static PDU configuration. */
struct PduConfig {
    /** Maximum power budget P_PDU, watts. */
    Watts budget = 80000.0;
    /** Breaker characteristics (ratedPower is set to budget). */
    CircuitBreakerConfig breaker;
    /** Number of outlets (downstream racks or servers). */
    std::size_t outlets = 22;
};

/**
 * PDU with per-outlet soft limits and an upstream breaker.
 */
class Pdu
{
  public:
    /**
     * @param name   telemetry name, e.g. "cluster.pdu"
     * @param config static configuration
     */
    Pdu(std::string name, const PduConfig &config);

    /** Number of outlets. */
    std::size_t outlets() const { return limits_.size(); }

    /** Set outlet @p i soft limit to @p watts. */
    void setOutletLimit(std::size_t i, Watts watts);

    /** Soft limit of outlet @p i. */
    Watts outletLimit(std::size_t i) const;

    /** Sum of all outlet soft limits. */
    Watts totalOutletLimit() const;

    /**
     * Validate Eq. (2): sum of soft limits within the PDU budget and
     * budget not exceeding @p totalNameplate.
     */
    bool budgetFeasible(Watts totalNameplate) const;

    /**
     * Observe one interval of utility-side draws per outlet (i.e.
     * p_i - b_i after any local battery contribution).
     *
     * Per-outlet soft-limit violations are counted; the aggregate
     * draw feeds the breaker's thermal model.
     *
     * @param draws utility draw per outlet, watts
     * @param dt    interval length, seconds
     * @retval true the upstream breaker tripped in this interval
     */
    bool observe(const std::vector<Watts> &draws, double dt);

    /** Aggregate draw observed in the last interval. */
    Watts lastAggregateDraw() const { return lastDraw_; }

    /** Count of per-outlet soft-limit violations so far. */
    std::uint64_t softLimitViolations() const { return violations_; }

    /** The upstream breaker. */
    CircuitBreaker &breaker() { return breaker_; }
    const CircuitBreaker &breaker() const { return breaker_; }

    /** PDU power budget. */
    Watts budget() const { return config_.budget; }

    /** Telemetry name. */
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    PduConfig config_;
    CircuitBreaker breaker_;
    std::vector<Watts> limits_;
    Watts lastDraw_ = 0.0;
    std::uint64_t violations_ = 0;
};

} // namespace pad::power

#endif // PAD_POWER_PDU_H
