file(REMOVE_RECURSE
  "libpad_battery.a"
)
