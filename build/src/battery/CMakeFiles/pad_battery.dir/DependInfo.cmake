
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/battery/aging_model.cc" "src/battery/CMakeFiles/pad_battery.dir/aging_model.cc.o" "gcc" "src/battery/CMakeFiles/pad_battery.dir/aging_model.cc.o.d"
  "/root/repo/src/battery/battery_unit.cc" "src/battery/CMakeFiles/pad_battery.dir/battery_unit.cc.o" "gcc" "src/battery/CMakeFiles/pad_battery.dir/battery_unit.cc.o.d"
  "/root/repo/src/battery/charge_policy.cc" "src/battery/CMakeFiles/pad_battery.dir/charge_policy.cc.o" "gcc" "src/battery/CMakeFiles/pad_battery.dir/charge_policy.cc.o.d"
  "/root/repo/src/battery/kibam.cc" "src/battery/CMakeFiles/pad_battery.dir/kibam.cc.o" "gcc" "src/battery/CMakeFiles/pad_battery.dir/kibam.cc.o.d"
  "/root/repo/src/battery/supercap.cc" "src/battery/CMakeFiles/pad_battery.dir/supercap.cc.o" "gcc" "src/battery/CMakeFiles/pad_battery.dir/supercap.cc.o.d"
  "/root/repo/src/battery/voltage_model.cc" "src/battery/CMakeFiles/pad_battery.dir/voltage_model.cc.o" "gcc" "src/battery/CMakeFiles/pad_battery.dir/voltage_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pad_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
