# Empty compiler generated dependencies file for pad_battery.
# This may be replaced when dependencies are built.
