file(REMOVE_RECURSE
  "CMakeFiles/pad_battery.dir/aging_model.cc.o"
  "CMakeFiles/pad_battery.dir/aging_model.cc.o.d"
  "CMakeFiles/pad_battery.dir/battery_unit.cc.o"
  "CMakeFiles/pad_battery.dir/battery_unit.cc.o.d"
  "CMakeFiles/pad_battery.dir/charge_policy.cc.o"
  "CMakeFiles/pad_battery.dir/charge_policy.cc.o.d"
  "CMakeFiles/pad_battery.dir/kibam.cc.o"
  "CMakeFiles/pad_battery.dir/kibam.cc.o.d"
  "CMakeFiles/pad_battery.dir/supercap.cc.o"
  "CMakeFiles/pad_battery.dir/supercap.cc.o.d"
  "CMakeFiles/pad_battery.dir/voltage_model.cc.o"
  "CMakeFiles/pad_battery.dir/voltage_model.cc.o.d"
  "libpad_battery.a"
  "libpad_battery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pad_battery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
