file(REMOVE_RECURSE
  "CMakeFiles/pad_sim.dir/event_queue.cc.o"
  "CMakeFiles/pad_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/pad_sim.dir/simulator.cc.o"
  "CMakeFiles/pad_sim.dir/simulator.cc.o.d"
  "CMakeFiles/pad_sim.dir/stats_registry.cc.o"
  "CMakeFiles/pad_sim.dir/stats_registry.cc.o.d"
  "CMakeFiles/pad_sim.dir/time_series.cc.o"
  "CMakeFiles/pad_sim.dir/time_series.cc.o.d"
  "libpad_sim.a"
  "libpad_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pad_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
