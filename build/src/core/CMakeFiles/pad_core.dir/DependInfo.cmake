
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/campaign.cc" "src/core/CMakeFiles/pad_core.dir/campaign.cc.o" "gcc" "src/core/CMakeFiles/pad_core.dir/campaign.cc.o.d"
  "/root/repo/src/core/config.cc" "src/core/CMakeFiles/pad_core.dir/config.cc.o" "gcc" "src/core/CMakeFiles/pad_core.dir/config.cc.o.d"
  "/root/repo/src/core/cost_model.cc" "src/core/CMakeFiles/pad_core.dir/cost_model.cc.o" "gcc" "src/core/CMakeFiles/pad_core.dir/cost_model.cc.o.d"
  "/root/repo/src/core/datacenter.cc" "src/core/CMakeFiles/pad_core.dir/datacenter.cc.o" "gcc" "src/core/CMakeFiles/pad_core.dir/datacenter.cc.o.d"
  "/root/repo/src/core/outage_cost.cc" "src/core/CMakeFiles/pad_core.dir/outage_cost.cc.o" "gcc" "src/core/CMakeFiles/pad_core.dir/outage_cost.cc.o.d"
  "/root/repo/src/core/schemes.cc" "src/core/CMakeFiles/pad_core.dir/schemes.cc.o" "gcc" "src/core/CMakeFiles/pad_core.dir/schemes.cc.o.d"
  "/root/repo/src/core/security_policy.cc" "src/core/CMakeFiles/pad_core.dir/security_policy.cc.o" "gcc" "src/core/CMakeFiles/pad_core.dir/security_policy.cc.o.d"
  "/root/repo/src/core/udeb.cc" "src/core/CMakeFiles/pad_core.dir/udeb.cc.o" "gcc" "src/core/CMakeFiles/pad_core.dir/udeb.cc.o.d"
  "/root/repo/src/core/vdeb.cc" "src/core/CMakeFiles/pad_core.dir/vdeb.cc.o" "gcc" "src/core/CMakeFiles/pad_core.dir/vdeb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attack/CMakeFiles/pad_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/battery/CMakeFiles/pad_battery.dir/DependInfo.cmake"
  "/root/repo/build/src/metering/CMakeFiles/pad_metering.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/pad_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/pad_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pad_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pad_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pad_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
