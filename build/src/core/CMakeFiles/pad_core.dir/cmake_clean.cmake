file(REMOVE_RECURSE
  "CMakeFiles/pad_core.dir/campaign.cc.o"
  "CMakeFiles/pad_core.dir/campaign.cc.o.d"
  "CMakeFiles/pad_core.dir/config.cc.o"
  "CMakeFiles/pad_core.dir/config.cc.o.d"
  "CMakeFiles/pad_core.dir/cost_model.cc.o"
  "CMakeFiles/pad_core.dir/cost_model.cc.o.d"
  "CMakeFiles/pad_core.dir/datacenter.cc.o"
  "CMakeFiles/pad_core.dir/datacenter.cc.o.d"
  "CMakeFiles/pad_core.dir/outage_cost.cc.o"
  "CMakeFiles/pad_core.dir/outage_cost.cc.o.d"
  "CMakeFiles/pad_core.dir/schemes.cc.o"
  "CMakeFiles/pad_core.dir/schemes.cc.o.d"
  "CMakeFiles/pad_core.dir/security_policy.cc.o"
  "CMakeFiles/pad_core.dir/security_policy.cc.o.d"
  "CMakeFiles/pad_core.dir/udeb.cc.o"
  "CMakeFiles/pad_core.dir/udeb.cc.o.d"
  "CMakeFiles/pad_core.dir/vdeb.cc.o"
  "CMakeFiles/pad_core.dir/vdeb.cc.o.d"
  "libpad_core.a"
  "libpad_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pad_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
