# Empty compiler generated dependencies file for pad_core.
# This may be replaced when dependencies are built.
