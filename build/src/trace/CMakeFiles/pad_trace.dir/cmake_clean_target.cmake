file(REMOVE_RECURSE
  "libpad_trace.a"
)
