# Empty dependencies file for pad_trace.
# This may be replaced when dependencies are built.
