file(REMOVE_RECURSE
  "CMakeFiles/pad_trace.dir/google_trace.cc.o"
  "CMakeFiles/pad_trace.dir/google_trace.cc.o.d"
  "CMakeFiles/pad_trace.dir/synthetic_trace.cc.o"
  "CMakeFiles/pad_trace.dir/synthetic_trace.cc.o.d"
  "CMakeFiles/pad_trace.dir/workload.cc.o"
  "CMakeFiles/pad_trace.dir/workload.cc.o.d"
  "libpad_trace.a"
  "libpad_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pad_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
