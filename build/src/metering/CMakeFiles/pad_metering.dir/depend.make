# Empty dependencies file for pad_metering.
# This may be replaced when dependencies are built.
