file(REMOVE_RECURSE
  "CMakeFiles/pad_metering.dir/detector.cc.o"
  "CMakeFiles/pad_metering.dir/detector.cc.o.d"
  "libpad_metering.a"
  "libpad_metering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pad_metering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
