file(REMOVE_RECURSE
  "libpad_metering.a"
)
