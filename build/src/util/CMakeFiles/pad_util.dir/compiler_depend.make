# Empty compiler generated dependencies file for pad_util.
# This may be replaced when dependencies are built.
