file(REMOVE_RECURSE
  "libpad_util.a"
)
