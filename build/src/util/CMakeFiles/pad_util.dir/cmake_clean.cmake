file(REMOVE_RECURSE
  "CMakeFiles/pad_util.dir/csv.cc.o"
  "CMakeFiles/pad_util.dir/csv.cc.o.d"
  "CMakeFiles/pad_util.dir/kv_config.cc.o"
  "CMakeFiles/pad_util.dir/kv_config.cc.o.d"
  "CMakeFiles/pad_util.dir/logging.cc.o"
  "CMakeFiles/pad_util.dir/logging.cc.o.d"
  "CMakeFiles/pad_util.dir/random.cc.o"
  "CMakeFiles/pad_util.dir/random.cc.o.d"
  "CMakeFiles/pad_util.dir/stats.cc.o"
  "CMakeFiles/pad_util.dir/stats.cc.o.d"
  "CMakeFiles/pad_util.dir/table.cc.o"
  "CMakeFiles/pad_util.dir/table.cc.o.d"
  "libpad_util.a"
  "libpad_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pad_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
