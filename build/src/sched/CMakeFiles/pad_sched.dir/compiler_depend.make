# Empty compiler generated dependencies file for pad_sched.
# This may be replaced when dependencies are built.
