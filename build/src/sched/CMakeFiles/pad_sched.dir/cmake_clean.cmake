file(REMOVE_RECURSE
  "CMakeFiles/pad_sched.dir/job_scheduler.cc.o"
  "CMakeFiles/pad_sched.dir/job_scheduler.cc.o.d"
  "CMakeFiles/pad_sched.dir/load_shedding.cc.o"
  "CMakeFiles/pad_sched.dir/load_shedding.cc.o.d"
  "CMakeFiles/pad_sched.dir/perf_monitor.cc.o"
  "CMakeFiles/pad_sched.dir/perf_monitor.cc.o.d"
  "libpad_sched.a"
  "libpad_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pad_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
