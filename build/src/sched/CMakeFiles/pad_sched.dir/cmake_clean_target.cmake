file(REMOVE_RECURSE
  "libpad_sched.a"
)
