
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/job_scheduler.cc" "src/sched/CMakeFiles/pad_sched.dir/job_scheduler.cc.o" "gcc" "src/sched/CMakeFiles/pad_sched.dir/job_scheduler.cc.o.d"
  "/root/repo/src/sched/load_shedding.cc" "src/sched/CMakeFiles/pad_sched.dir/load_shedding.cc.o" "gcc" "src/sched/CMakeFiles/pad_sched.dir/load_shedding.cc.o.d"
  "/root/repo/src/sched/perf_monitor.cc" "src/sched/CMakeFiles/pad_sched.dir/perf_monitor.cc.o" "gcc" "src/sched/CMakeFiles/pad_sched.dir/perf_monitor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/pad_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pad_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
