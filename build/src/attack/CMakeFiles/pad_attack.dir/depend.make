# Empty dependencies file for pad_attack.
# This may be replaced when dependencies are built.
