file(REMOVE_RECURSE
  "CMakeFiles/pad_attack.dir/attack_stats.cc.o"
  "CMakeFiles/pad_attack.dir/attack_stats.cc.o.d"
  "CMakeFiles/pad_attack.dir/attacker.cc.o"
  "CMakeFiles/pad_attack.dir/attacker.cc.o.d"
  "CMakeFiles/pad_attack.dir/power_virus.cc.o"
  "CMakeFiles/pad_attack.dir/power_virus.cc.o.d"
  "CMakeFiles/pad_attack.dir/virus_trace.cc.o"
  "CMakeFiles/pad_attack.dir/virus_trace.cc.o.d"
  "libpad_attack.a"
  "libpad_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pad_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
