
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/attack_stats.cc" "src/attack/CMakeFiles/pad_attack.dir/attack_stats.cc.o" "gcc" "src/attack/CMakeFiles/pad_attack.dir/attack_stats.cc.o.d"
  "/root/repo/src/attack/attacker.cc" "src/attack/CMakeFiles/pad_attack.dir/attacker.cc.o" "gcc" "src/attack/CMakeFiles/pad_attack.dir/attacker.cc.o.d"
  "/root/repo/src/attack/power_virus.cc" "src/attack/CMakeFiles/pad_attack.dir/power_virus.cc.o" "gcc" "src/attack/CMakeFiles/pad_attack.dir/power_virus.cc.o.d"
  "/root/repo/src/attack/virus_trace.cc" "src/attack/CMakeFiles/pad_attack.dir/virus_trace.cc.o" "gcc" "src/attack/CMakeFiles/pad_attack.dir/virus_trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pad_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
