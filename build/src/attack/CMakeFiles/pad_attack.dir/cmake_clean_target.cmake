file(REMOVE_RECURSE
  "libpad_attack.a"
)
