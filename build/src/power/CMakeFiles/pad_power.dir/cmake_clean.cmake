file(REMOVE_RECURSE
  "CMakeFiles/pad_power.dir/circuit_breaker.cc.o"
  "CMakeFiles/pad_power.dir/circuit_breaker.cc.o.d"
  "CMakeFiles/pad_power.dir/deployment.cc.o"
  "CMakeFiles/pad_power.dir/deployment.cc.o.d"
  "CMakeFiles/pad_power.dir/pdu.cc.o"
  "CMakeFiles/pad_power.dir/pdu.cc.o.d"
  "CMakeFiles/pad_power.dir/power_meter.cc.o"
  "CMakeFiles/pad_power.dir/power_meter.cc.o.d"
  "CMakeFiles/pad_power.dir/server_power_model.cc.o"
  "CMakeFiles/pad_power.dir/server_power_model.cc.o.d"
  "libpad_power.a"
  "libpad_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pad_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
