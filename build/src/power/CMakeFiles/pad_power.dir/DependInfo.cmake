
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/circuit_breaker.cc" "src/power/CMakeFiles/pad_power.dir/circuit_breaker.cc.o" "gcc" "src/power/CMakeFiles/pad_power.dir/circuit_breaker.cc.o.d"
  "/root/repo/src/power/deployment.cc" "src/power/CMakeFiles/pad_power.dir/deployment.cc.o" "gcc" "src/power/CMakeFiles/pad_power.dir/deployment.cc.o.d"
  "/root/repo/src/power/pdu.cc" "src/power/CMakeFiles/pad_power.dir/pdu.cc.o" "gcc" "src/power/CMakeFiles/pad_power.dir/pdu.cc.o.d"
  "/root/repo/src/power/power_meter.cc" "src/power/CMakeFiles/pad_power.dir/power_meter.cc.o" "gcc" "src/power/CMakeFiles/pad_power.dir/power_meter.cc.o.d"
  "/root/repo/src/power/server_power_model.cc" "src/power/CMakeFiles/pad_power.dir/server_power_model.cc.o" "gcc" "src/power/CMakeFiles/pad_power.dir/server_power_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pad_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
