file(REMOVE_RECURSE
  "libpad_power.a"
)
