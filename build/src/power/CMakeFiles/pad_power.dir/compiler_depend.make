# Empty compiler generated dependencies file for pad_power.
# This may be replaced when dependencies are built.
