# Empty dependencies file for fig01_outage_cost.
# This may be replaced when dependencies are built.
