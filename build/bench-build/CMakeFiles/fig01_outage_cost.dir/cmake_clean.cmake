file(REMOVE_RECURSE
  "../bench/fig01_outage_cost"
  "../bench/fig01_outage_cost.pdb"
  "CMakeFiles/fig01_outage_cost.dir/fig01_outage_cost.cc.o"
  "CMakeFiles/fig01_outage_cost.dir/fig01_outage_cost.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_outage_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
