file(REMOVE_RECURSE
  "../bench/ablation_deployment"
  "../bench/ablation_deployment.pdb"
  "CMakeFiles/ablation_deployment.dir/ablation_deployment.cc.o"
  "CMakeFiles/ablation_deployment.dir/ablation_deployment.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
