file(REMOVE_RECURSE
  "../bench/fig05_soc_variation"
  "../bench/fig05_soc_variation.pdb"
  "CMakeFiles/fig05_soc_variation.dir/fig05_soc_variation.cc.o"
  "CMakeFiles/fig05_soc_variation.dir/fig05_soc_variation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_soc_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
