# Empty dependencies file for fig05_soc_variation.
# This may be replaced when dependencies are built.
