file(REMOVE_RECURSE
  "../bench/table1_detection_rate"
  "../bench/table1_detection_rate.pdb"
  "CMakeFiles/table1_detection_rate.dir/table1_detection_rate.cc.o"
  "CMakeFiles/table1_detection_rate.dir/table1_detection_rate.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_detection_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
