# Empty compiler generated dependencies file for table1_detection_rate.
# This may be replaced when dependencies are built.
