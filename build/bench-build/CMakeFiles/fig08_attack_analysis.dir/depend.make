# Empty dependencies file for fig08_attack_analysis.
# This may be replaced when dependencies are built.
