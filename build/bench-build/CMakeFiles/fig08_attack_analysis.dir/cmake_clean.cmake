file(REMOVE_RECURSE
  "../bench/fig08_attack_analysis"
  "../bench/fig08_attack_analysis.pdb"
  "CMakeFiles/fig08_attack_analysis.dir/fig08_attack_analysis.cc.o"
  "CMakeFiles/fig08_attack_analysis.dir/fig08_attack_analysis.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_attack_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
