# Empty dependencies file for fig07_effective_attack.
# This may be replaced when dependencies are built.
