file(REMOVE_RECURSE
  "../bench/fig07_effective_attack"
  "../bench/fig07_effective_attack.pdb"
  "CMakeFiles/fig07_effective_attack.dir/fig07_effective_attack.cc.o"
  "CMakeFiles/fig07_effective_attack.dir/fig07_effective_attack.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_effective_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
