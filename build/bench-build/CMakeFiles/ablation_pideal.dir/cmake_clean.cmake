file(REMOVE_RECURSE
  "../bench/ablation_pideal"
  "../bench/ablation_pideal.pdb"
  "CMakeFiles/ablation_pideal.dir/ablation_pideal.cc.o"
  "CMakeFiles/ablation_pideal.dir/ablation_pideal.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pideal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
