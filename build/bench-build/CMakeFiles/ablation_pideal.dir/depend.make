# Empty dependencies file for ablation_pideal.
# This may be replaced when dependencies are built.
