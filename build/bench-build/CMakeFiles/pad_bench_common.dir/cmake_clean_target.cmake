file(REMOVE_RECURSE
  "libpad_bench_common.a"
)
