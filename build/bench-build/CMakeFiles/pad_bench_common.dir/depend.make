# Empty dependencies file for pad_bench_common.
# This may be replaced when dependencies are built.
