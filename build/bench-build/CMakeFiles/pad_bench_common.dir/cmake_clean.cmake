file(REMOVE_RECURSE
  "CMakeFiles/pad_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/pad_bench_common.dir/bench_common.cc.o.d"
  "libpad_bench_common.a"
  "libpad_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pad_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
