file(REMOVE_RECURSE
  "../bench/fig13_deb_usage_map"
  "../bench/fig13_deb_usage_map.pdb"
  "CMakeFiles/fig13_deb_usage_map.dir/fig13_deb_usage_map.cc.o"
  "CMakeFiles/fig13_deb_usage_map.dir/fig13_deb_usage_map.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_deb_usage_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
