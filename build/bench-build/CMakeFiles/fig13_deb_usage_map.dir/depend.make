# Empty dependencies file for fig13_deb_usage_map.
# This may be replaced when dependencies are built.
