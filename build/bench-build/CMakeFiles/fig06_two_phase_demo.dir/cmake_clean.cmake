file(REMOVE_RECURSE
  "../bench/fig06_two_phase_demo"
  "../bench/fig06_two_phase_demo.pdb"
  "CMakeFiles/fig06_two_phase_demo.dir/fig06_two_phase_demo.cc.o"
  "CMakeFiles/fig06_two_phase_demo.dir/fig06_two_phase_demo.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_two_phase_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
