# Empty compiler generated dependencies file for fig06_two_phase_demo.
# This may be replaced when dependencies are built.
