# Empty dependencies file for fig15_survival_time.
# This may be replaced when dependencies are built.
