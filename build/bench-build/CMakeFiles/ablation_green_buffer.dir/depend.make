# Empty dependencies file for ablation_green_buffer.
# This may be replaced when dependencies are built.
