file(REMOVE_RECURSE
  "../bench/ablation_green_buffer"
  "../bench/ablation_green_buffer.pdb"
  "CMakeFiles/ablation_green_buffer.dir/ablation_green_buffer.cc.o"
  "CMakeFiles/ablation_green_buffer.dir/ablation_green_buffer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_green_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
