# Empty dependencies file for fig14_load_shedding.
# This may be replaced when dependencies are built.
