file(REMOVE_RECURSE
  "../bench/fig14_load_shedding"
  "../bench/fig14_load_shedding.pdb"
  "CMakeFiles/fig14_load_shedding.dir/fig14_load_shedding.cc.o"
  "CMakeFiles/fig14_load_shedding.dir/fig14_load_shedding.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_load_shedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
