# Empty dependencies file for fig17_cost_efficiency.
# This may be replaced when dependencies are built.
