file(REMOVE_RECURSE
  "../bench/fig17_cost_efficiency"
  "../bench/fig17_cost_efficiency.pdb"
  "CMakeFiles/fig17_cost_efficiency.dir/fig17_cost_efficiency.cc.o"
  "CMakeFiles/fig17_cost_efficiency.dir/fig17_cost_efficiency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_cost_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
