file(REMOVE_RECURSE
  "../bench/ablation_sidechannel"
  "../bench/ablation_sidechannel.pdb"
  "CMakeFiles/ablation_sidechannel.dir/ablation_sidechannel.cc.o"
  "CMakeFiles/ablation_sidechannel.dir/ablation_sidechannel.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sidechannel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
