# Empty dependencies file for ablation_sidechannel.
# This may be replaced when dependencies are built.
