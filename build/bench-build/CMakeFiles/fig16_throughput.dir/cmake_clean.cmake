file(REMOVE_RECURSE
  "../bench/fig16_throughput"
  "../bench/fig16_throughput.pdb"
  "CMakeFiles/fig16_throughput.dir/fig16_throughput.cc.o"
  "CMakeFiles/fig16_throughput.dir/fig16_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
