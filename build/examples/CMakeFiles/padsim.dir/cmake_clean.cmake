file(REMOVE_RECURSE
  "CMakeFiles/padsim.dir/padsim.cpp.o"
  "CMakeFiles/padsim.dir/padsim.cpp.o.d"
  "padsim"
  "padsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/padsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
