# Empty dependencies file for padsim.
# This may be replaced when dependencies are built.
