# Empty dependencies file for stats_kvconfig_test.
# This may be replaced when dependencies are built.
