file(REMOVE_RECURSE
  "CMakeFiles/stats_kvconfig_test.dir/stats_kvconfig_test.cc.o"
  "CMakeFiles/stats_kvconfig_test.dir/stats_kvconfig_test.cc.o.d"
  "stats_kvconfig_test"
  "stats_kvconfig_test.pdb"
  "stats_kvconfig_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_kvconfig_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
