file(REMOVE_RECURSE
  "CMakeFiles/voltage_aging_test.dir/voltage_aging_test.cc.o"
  "CMakeFiles/voltage_aging_test.dir/voltage_aging_test.cc.o.d"
  "voltage_aging_test"
  "voltage_aging_test.pdb"
  "voltage_aging_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltage_aging_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
