# Empty dependencies file for voltage_aging_test.
# This may be replaced when dependencies are built.
