# Empty dependencies file for job_scheduler_test.
# This may be replaced when dependencies are built.
