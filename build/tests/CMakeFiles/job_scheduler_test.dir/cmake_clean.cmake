file(REMOVE_RECURSE
  "CMakeFiles/job_scheduler_test.dir/job_scheduler_test.cc.o"
  "CMakeFiles/job_scheduler_test.dir/job_scheduler_test.cc.o.d"
  "job_scheduler_test"
  "job_scheduler_test.pdb"
  "job_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/job_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
