file(REMOVE_RECURSE
  "CMakeFiles/deployment_outage_test.dir/deployment_outage_test.cc.o"
  "CMakeFiles/deployment_outage_test.dir/deployment_outage_test.cc.o.d"
  "deployment_outage_test"
  "deployment_outage_test.pdb"
  "deployment_outage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deployment_outage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
