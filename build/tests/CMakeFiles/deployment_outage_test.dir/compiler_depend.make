# Empty compiler generated dependencies file for deployment_outage_test.
# This may be replaced when dependencies are built.
