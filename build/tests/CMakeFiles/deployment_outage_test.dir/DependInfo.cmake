
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/deployment_outage_test.cc" "tests/CMakeFiles/deployment_outage_test.dir/deployment_outage_test.cc.o" "gcc" "tests/CMakeFiles/deployment_outage_test.dir/deployment_outage_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pad_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metering/CMakeFiles/pad_metering.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/pad_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/battery/CMakeFiles/pad_battery.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/pad_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/pad_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pad_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pad_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pad_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
