# Empty compiler generated dependencies file for kibam_test.
# This may be replaced when dependencies are built.
