file(REMOVE_RECURSE
  "CMakeFiles/kibam_test.dir/kibam_test.cc.o"
  "CMakeFiles/kibam_test.dir/kibam_test.cc.o.d"
  "kibam_test"
  "kibam_test.pdb"
  "kibam_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kibam_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
