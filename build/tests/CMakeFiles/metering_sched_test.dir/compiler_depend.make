# Empty compiler generated dependencies file for metering_sched_test.
# This may be replaced when dependencies are built.
