file(REMOVE_RECURSE
  "CMakeFiles/metering_sched_test.dir/metering_sched_test.cc.o"
  "CMakeFiles/metering_sched_test.dir/metering_sched_test.cc.o.d"
  "metering_sched_test"
  "metering_sched_test.pdb"
  "metering_sched_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metering_sched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
