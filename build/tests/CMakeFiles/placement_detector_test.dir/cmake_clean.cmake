file(REMOVE_RECURSE
  "CMakeFiles/placement_detector_test.dir/placement_detector_test.cc.o"
  "CMakeFiles/placement_detector_test.dir/placement_detector_test.cc.o.d"
  "placement_detector_test"
  "placement_detector_test.pdb"
  "placement_detector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/placement_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
