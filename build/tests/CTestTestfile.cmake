# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/kibam_test[1]_include.cmake")
include("/root/repo/build/tests/battery_unit_test[1]_include.cmake")
include("/root/repo/build/tests/power_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/attack_test[1]_include.cmake")
include("/root/repo/build/tests/metering_sched_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/datacenter_test[1]_include.cmake")
include("/root/repo/build/tests/voltage_aging_test[1]_include.cmake")
include("/root/repo/build/tests/deployment_outage_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/placement_detector_test[1]_include.cmake")
include("/root/repo/build/tests/stats_kvconfig_test[1]_include.cmake")
include("/root/repo/build/tests/campaign_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/job_scheduler_test[1]_include.cmake")
