#!/usr/bin/env bash
#
# Rebuild the perf harness in Release mode and regenerate the
# committed benchmark results (BENCH_PR4.json) reproducibly:
#
#   scripts/bench.sh                # portable codegen
#   PAD_NATIVE=ON scripts/bench.sh  # tune for this machine
#   BENCH_OUT=my.json scripts/bench.sh
#
# Benchmark numbers are only meaningful from Release binaries (O3 +
# LTO, no sanitizers); the default developer build is RelWithDebInfo,
# which is why this script maintains its own build tree.

set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-rel}
BENCH_OUT=${BENCH_OUT:-BENCH_PR4.json}
PAD_NATIVE=${PAD_NATIVE:-OFF}
JOBS=${JOBS:-$(nproc)}

cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DPAD_NATIVE="$PAD_NATIVE" >/dev/null
cmake --build "$BUILD_DIR" --target perfbench -j "$JOBS"

"$BUILD_DIR/bench/perfbench" --profile both --json "$BENCH_OUT" \
    | tee "$BENCH_OUT.txt"
echo "benchmark results written to $BENCH_OUT"

# Alert-engine rows at a glance. The bars that matter (DESIGN.md
# §10): alert_eval stays in the tens of ns per sample, and
# single_run_alerts stays within ~10% of single_run_telemetry (the
# fair baseline — enabling alerts also turns the telemetry hub on).
echo
echo "alert-engine micro-bench:"
grep -A 3 -E '^(alert_eval|single_run|single_run_telemetry|single_run_alerts)$' \
    "$BENCH_OUT.txt" || echo "  (no alert rows in perfbench output?)"
rm -f "$BENCH_OUT.txt"
