#!/usr/bin/env bash
#
# Rebuild the perf harness in Release mode and regenerate the
# committed benchmark results (BENCH_PR7.json) reproducibly:
#
#   scripts/bench.sh                     # all backends, portable codegen
#   scripts/bench.sh --backend soa       # one backend column (+ scalar ref)
#   PAD_NATIVE=ON scripts/bench.sh       # tune for this machine
#   BENCH_OUT=my.json scripts/bench.sh
#
# Benchmark numbers are only meaningful from Release binaries (O3 +
# LTO, no sanitizers); the default developer build is RelWithDebInfo,
# which is why this script maintains its own build tree.

set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-rel}
BENCH_OUT=${BENCH_OUT:-BENCH_PR7.json}
PAD_NATIVE=${PAD_NATIVE:-OFF}
JOBS=${JOBS:-$(nproc)}

# Extra flags (e.g. --backend soa, --quick) pass straight through to
# perfbench; the default measures every backend column.
BACKEND_ARGS=("$@")
if [ ${#BACKEND_ARGS[@]} -eq 0 ]; then
    BACKEND_ARGS=(--backend all)
fi

cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DPAD_NATIVE="$PAD_NATIVE" >/dev/null
cmake --build "$BUILD_DIR" --target perfbench padtrace -j "$JOBS"

"$BUILD_DIR/bench/perfbench" "${BACKEND_ARGS[@]}" --json "$BENCH_OUT" \
    | tee "$BENCH_OUT.txt"
echo "benchmark results written to $BENCH_OUT"

# Engine rows at a glance. The bars that matter: single_run soa_gain
# >= 3x over the optimized scalar engine (DESIGN.md §11), alert_eval
# stays in the tens of ns per sample, single_run_alerts stays
# within ~10% of single_run_telemetry (the fair baseline — enabling
# alerts also turns the telemetry hub on), and single_run_push — the
# same run plus a full end-of-run export through the pad-rw-v1 push
# pipeline to an in-process receiver (DESIGN.md §14) — prices the
# whole export envelope, not just the snapshot.
echo
echo "engine and alert rows:"
grep -A 6 -E '^(fine_tick|alert_eval|single_run|single_run_telemetry|single_run_alerts|single_run_profiled|single_run_push)$' \
    "$BENCH_OUT.txt" || echo "  (no engine rows in perfbench output?)"
rm -f "$BENCH_OUT.txt"

# Per-phase engine breakdown from the profiled row (schema v3), and
# the profiling-overhead check: single_run_profiled should stay
# within ~5% of single_run per backend.
PADTRACE="$BUILD_DIR/examples/padtrace"
if [ -x "$PADTRACE" ]; then
    echo
    "$PADTRACE" perf "$BENCH_OUT"
else
    echo "(padtrace not built; skip phase table)"
fi
